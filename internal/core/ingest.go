package core

import (
	"zigzag/internal/dsp"
	"zigzag/internal/obs"
	"zigzag/internal/phy"
)

// Streaming ingest surface. The paper's receiver is an online 802.11 AP
// (§5.1d): it never sees a pre-cut reception buffer, it watches a
// continuous sample stream. Ingest/Poll expose that surface: Ingest
// accepts the stream in arbitrary-size chunks and frames it into
// reception buffers (phy.Framer's energy gate), Poll runs the framed
// receptions through the exact same per-reception pipeline Receive
// uses (receiveBuf), so the streaming path is bit-identical to the
// one-shot path by construction — Receive is now a thin wrapper over
// the shared pipeline.
//
// Memory is bounded end to end: the framer window is capped at
// MaxWindow, the pending-reception queue at MaxPending (oldest dropped
// beyond it — explicit load shedding, counted in StreamStats), and
// every buffer is receiver-owned and recycled. A steady-state
// Ingest+Poll cycle allocates nothing.

// StreamConfig parameterizes a receiver's streaming front end.
type StreamConfig struct {
	// GateThreshold is the framer's amplitude gate; 0 treats any
	// nonzero sample as active (exact framing for synthetic streams
	// whose inter-reception gaps are true zeros).
	GateThreshold float64
	// IdleGap and MaxWindow configure the burst framer (defaults
	// phy.DefaultIdleGap / phy.DefaultMaxWindow).
	IdleGap   int
	MaxWindow int
	// MaxPending bounds the framed-but-undecoded reception queue;
	// beyond it the oldest pending reception is dropped
	// (StreamStats.Dropped). Default 8.
	MaxPending int
}

// DefaultMaxPending is the default pending-reception bound.
const DefaultMaxPending = 8

func (c StreamConfig) maxPending() int {
	if c.MaxPending > 0 {
		return c.MaxPending
	}
	return DefaultMaxPending
}

// StreamStats counts the streaming front end's work since the last
// SetStream/Reinit.
type StreamStats struct {
	Samples    int64 // samples ingested
	Bursts     int64 // receptions framed
	Polled     int64 // receptions decoded by Poll/PollOne
	Dropped    int64 // pending receptions shed (queue overflow)
	ForcedCuts int64 // bursts cut by MaxWindow rather than idle air
}

// PollInfo describes the reception a PollOne decoded.
type PollInfo struct {
	// Start/End are the reception's absolute sample extent in the
	// stream; Forced marks a MaxWindow cut (see phy.BurstInfo).
	Start, End int64
	Forced     bool
	// Stamp is the StreamStamp hook's value captured when the
	// reception was framed (0 without a hook) — the serve engine uses
	// it to measure framed→decoded latency.
	Stamp int64
}

// pendingRec is one framed-but-undecoded reception (receiver-owned,
// recycled through the stream free list).
type pendingRec struct {
	buf  []complex128
	info PollInfo
}

// streamState is the Receiver's streaming front end: the framer, the
// bounded pending queue with its free list, and the counters.
type streamState struct {
	cfg     StreamConfig
	framer  *phy.Framer
	emit    func([]complex128, phy.BurstInfo) // bound once; keeps Ingest 0-alloc
	pending []*pendingRec
	free    []*pendingRec
	stats   StreamStats
	// framerStats is the attached framer instrumentation (see
	// SetFramerStats), re-applied whenever SetStream rebuilds the framer.
	framerStats *obs.FramerStats
}

// SetFramerStats attaches observability counters to the streaming
// framer (samples pushed, bursts framed, forced cuts). Like the other
// observers, the attachment is preserved across SetStream and Reinit.
func (z *Receiver) SetFramerStats(fs *obs.FramerStats) {
	z.stream.framerStats = fs
	if z.stream.framer != nil {
		z.stream.framer.SetStats(fs)
	}
}

// StreamStamp, when non-nil, is sampled as each reception is framed and
// carried into the matching PollInfo.Stamp — a monotonic-clock hook for
// latency measurement, kept out of the core so the decode path stays
// deterministic. Reinit clears it.
//
// (Field documented here, declared on Receiver.)

// SetStream (re)arms the streaming front end with cfg, resetting any
// prior stream state (open burst, pending queue, stats) while keeping
// recycled buffers. Receive may still be called on a streaming
// receiver; the two surfaces share all decode state.
func (z *Receiver) SetStream(cfg StreamConfig) {
	st := &z.stream
	st.cfg = cfg
	fc := phy.FramerConfig{Threshold: cfg.GateThreshold, IdleGap: cfg.IdleGap, MaxWindow: cfg.MaxWindow}
	if st.framer == nil {
		st.framer = phy.NewFramer(fc)
	} else {
		*st.framer = *phy.NewFramer(fc)
	}
	st.framer.SetStats(st.framerStats)
	if st.emit == nil {
		st.emit = z.enqueueBurst
	}
	z.drainPending()
	st.stats = StreamStats{}
}

// resetStream drops all streaming state (Reinit's contract: back to the
// NewReceiver state; call SetStream again to stream).
func (z *Receiver) resetStream() {
	st := &z.stream
	st.cfg = StreamConfig{}
	if st.framer != nil {
		st.framer.Reset()
	}
	z.drainPending()
	st.stats = StreamStats{}
	z.StreamStamp = nil
}

func (z *Receiver) drainPending() {
	st := &z.stream
	for _, p := range st.pending {
		st.free = append(st.free, p)
	}
	st.pending = st.pending[:0]
}

// enqueueBurst copies a framed burst into a recycled pending entry,
// shedding the oldest pending reception if the queue is full.
func (z *Receiver) enqueueBurst(burst []complex128, info phy.BurstInfo) {
	st := &z.stream
	st.stats.Bursts++
	if info.Forced {
		st.stats.ForcedCuts++
		if z.Obs != nil {
			z.emit(obs.Event{Kind: obs.KindForcedCut, A: info.Start, B: info.End})
		}
	}
	for len(st.pending) >= st.cfg.maxPending() {
		shed := st.pending[0]
		if z.Obs != nil {
			z.emit(obs.Event{Kind: obs.KindShed, A: shed.info.Start, B: shed.info.End})
		}
		st.free = append(st.free, shed)
		st.pending = append(st.pending[:0], st.pending[1:]...)
		st.stats.Dropped++
	}
	var p *pendingRec
	if n := len(st.free); n > 0 {
		p, st.free = st.free[n-1], st.free[:n-1]
	} else {
		p = &pendingRec{}
	}
	p.buf = dsp.Ensure(p.buf, len(burst))
	copy(p.buf, burst)
	p.info = PollInfo{Start: info.Start, End: info.End, Forced: info.Forced}
	if z.StreamStamp != nil {
		p.info.Stamp = z.StreamStamp()
	}
	st.pending = append(st.pending, p)
}

// Ingest feeds one chunk of the continuous stream, framing completed
// receptions into the pending queue. It returns the number of
// receptions framed by this chunk. Chunk size is semantically
// irrelevant: any chunking of the same stream frames the same
// receptions. SetStream must have been called.
func (z *Receiver) Ingest(chunk []complex128) int {
	st := &z.stream
	before := len(st.pending) + int(st.stats.Dropped)
	st.stats.Samples += int64(len(chunk))
	st.framer.Push(chunk, st.emit)
	return len(st.pending) + int(st.stats.Dropped) - before
}

// FlushStream closes the stream: any open burst is framed as a final
// reception (returning the number framed, 0 or 1). Poll afterwards to
// drain what remains pending.
func (z *Receiver) FlushStream() int {
	st := &z.stream
	before := len(st.pending) + int(st.stats.Dropped)
	st.framer.Flush(st.emit)
	return len(st.pending) + int(st.stats.Dropped) - before
}

// Pending reports how many framed receptions await Poll.
func (z *Receiver) Pending() int { return len(z.stream.pending) }

// Stream returns the streaming counters since SetStream.
func (z *Receiver) Stream() StreamStats { return z.stream.stats }

// PollOne decodes the oldest pending reception through the shared
// per-reception pipeline, returning its events (receiver-owned, valid
// until the next decode — same contract as Receive) and the
// reception's stream extent. ok is false when nothing is pending.
func (z *Receiver) PollOne() (evs []Event, info PollInfo, ok bool) {
	st := &z.stream
	if len(st.pending) == 0 {
		return nil, PollInfo{}, false
	}
	p := st.pending[0]
	st.pending = append(st.pending[:0], st.pending[1:]...)
	st.stats.Polled++
	evs = z.receiveBuf(p.buf)
	// The pipeline copies anything it retains (the collision store
	// copies samples; events reference per-decode allocations, not the
	// reception buffer), so the entry recycles immediately.
	st.free = append(st.free, p)
	return evs, p.info, true
}

// Poll decodes every pending reception and returns the concatenated
// events, oldest reception first (nil when nothing was pending or
// nothing was deliverable). The returned slice is receiver-owned and
// valid until the next Poll.
func (z *Receiver) Poll() []Event {
	out := z.pollEvs[:0]
	for {
		evs, _, ok := z.PollOne()
		if !ok {
			break
		}
		out = append(out, evs...)
	}
	z.pollEvs = out
	if len(out) == 0 {
		return nil
	}
	return out
}
