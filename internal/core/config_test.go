package core

import (
	"math"
	"testing"
)

func TestConfigDefaults(t *testing.T) {
	var c Config
	if c.maxChunk() != DefaultMaxChunkSymbols {
		t.Fatal("maxChunk default wrong")
	}
	if c.minTrackChips() != DefaultMinTrackChips {
		t.Fatal("minTrackChips default wrong")
	}
	if c.matchThreshold() != DefaultMatchThreshold {
		t.Fatal("matchThreshold default wrong")
	}
	if c.detectBeta() != DefaultDetectBeta {
		t.Fatal("detectBeta default wrong")
	}
	if got := c.captureRatio(); math.Abs(got-10) > 1e-9 {
		t.Fatalf("captureRatio default = %v, want 10 (10 dB)", got)
	}
	cfg := DefaultConfig()
	if c.holdback() != 0 && cfg.holdback() != cfg.PHY.EqTaps {
		t.Fatal("holdback should default to the equalizer tap count")
	}
}

func TestConfigOverrides(t *testing.T) {
	c := Config{
		MaxChunkSymbols: 99,
		CaptureSINRdB:   3,
		MatchThreshold:  0.5,
		MinTrackChips:   17,
		DetectBeta:      0.9,
		HoldbackSymbols: 7,
	}
	if c.maxChunk() != 99 || c.minTrackChips() != 17 || c.holdback() != 7 {
		t.Fatal("integer overrides ignored")
	}
	if c.matchThreshold() != 0.5 || c.detectBeta() != 0.9 {
		t.Fatal("float overrides ignored")
	}
	if math.Abs(c.captureRatio()-1.9952623) > 1e-4 {
		t.Fatalf("captureRatio(3dB) = %v", c.captureRatio())
	}
}

func TestPacketResultHelpers(t *testing.T) {
	var pr PacketResult
	if pr.OK() {
		t.Fatal("zero PacketResult should not be OK")
	}
	var res Result
	if !res.AllOK() {
		t.Fatal("empty result is vacuously OK")
	}
	res.Packets = append(res.Packets, PacketResult{})
	if res.AllOK() {
		t.Fatal("failed packet should break AllOK")
	}
}
