package core

import (
	"math/rand"
	"testing"
)

// TestMetaForAllocFree pins the last receiver hot-path leftover from the
// ROADMAP: per-reception packet-metadata assembly reuses the
// receiver-owned scratch slice.
func TestMetaForAllocFree(t *testing.T) {
	const noise = 0.05
	s := newScenario(t, 71, 180, []float64{14, 13}, []float64{0.003, -0.002}, noise)
	z := NewReceiver(s.cfg, onlineClients(s))
	ids := []uint8{s.frames[0].Src, s.frames[1].Src}
	if got := z.metaFor(ids); len(got) != 2 {
		t.Fatalf("metaFor returned %d metas, want 2", len(got))
	}
	op := func() { z.metaFor(ids) }
	op() // warm up the scratch
	if n := testing.AllocsPerRun(50, op); n != 0 {
		t.Errorf("metaFor: %v allocs per run in steady state, want 0", n)
	}
}

// TestDeliverAllocFree pins the other half of that leftover: assembling
// the per-packet events of a decode onto the receiver-owned event
// buffer allocates nothing in steady state.
func TestDeliverAllocFree(t *testing.T) {
	const noise = 0.05
	s := newScenario(t, 73, 180, []float64{14, 13}, []float64{0.004, -0.003}, noise)
	z := NewReceiver(s.cfg, onlineClients(s))
	rng := rand.New(rand.NewSource(74))
	rx := s.render(t, rng, noise, []int{50, 50 + 700})
	occs, clients := z.detect(rx)
	if len(occs) != 2 {
		t.Fatalf("detector found %d occurrences, want 2", len(occs))
	}
	res, rec := z.decodeSingleReception(rx, occs, clients)
	if res == nil {
		t.Fatal("single-reception decode errored")
	}
	if evs := z.deliver(res, clients, ViaCapture, rec); len(evs) != len(res.Packets) {
		t.Fatalf("deliver produced %d events, want %d", len(evs), len(res.Packets))
	}
	op := func() { z.deliver(res, clients, ViaCapture, rec) }
	op() // warm up the event buffer
	if n := testing.AllocsPerRun(50, op); n != 0 {
		t.Errorf("deliver: %v allocs per run in steady state, want 0", n)
	}
}

// TestReceiveEnvelopeAllocFree pins the whole online Receive envelope
// for a clean single-packet reception. The pooled decode itself keeps a
// small, fixed number of allocations by contract (the caller-owned
// Result and the frame parses — see TestDecodeWithSteadyStateAllocs),
// so instead of demanding an absolute zero this test demands that
// Receive allocates no more than its inner detect+decode+deliver
// sequence: the receiver's own layers — metadata assembly, occurrence
// bookkeeping, event buffering — contribute nothing.
func TestReceiveEnvelopeAllocFree(t *testing.T) {
	const noise = 0.05
	s := newScenario(t, 75, 160, []float64{18}, []float64{0.003}, noise)
	z := NewReceiver(s.cfg, onlineClients(s))
	rng := rand.New(rand.NewSource(76))
	rx := s.render(t, rng, noise, []int{50})
	if evs := z.Receive(rx); len(evs) != 1 || evs[0].Frame == nil {
		t.Fatalf("clean packet did not decode: %+v", evs)
	}
	inner := func() {
		occs, clients := z.detect(rx)
		res, rec := z.decodeSingleReception(rx, occs, clients)
		if res != nil {
			z.deliver(res, clients, ViaCapture, rec)
		}
	}
	outer := func() { z.Receive(rx) }
	for i := 0; i < 3; i++ {
		inner() // warm up every arena on the path
		outer()
	}
	nInner := testing.AllocsPerRun(20, inner)
	nOuter := testing.AllocsPerRun(20, outer)
	if nOuter > nInner {
		t.Errorf("Receive allocates %v per run vs %v for its inner decode — the receiver envelope is not alloc-free", nOuter, nInner)
	}
}
