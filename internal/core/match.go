package core

import (
	"math"

	"zigzag/internal/dsp"
	"zigzag/internal/dsp/fft"
	"zigzag/internal/frame"
	"zigzag/internal/modem"
)

// MatchWindow is the number of samples correlated when checking whether
// two collisions contain the same packet (§4.2.2). Longer windows
// separate same/different packets more sharply; one-to-two preamble
// spans beyond the packet start is ample because payload data dominates.
const MatchWindow = 512

// matchScore correlates reception a aligned at sample position startA
// against reception b aligned at startB. When the packets starting at
// those positions are the same, the windows are highly dependent (they
// differ only in the other colliding packet, noise, carrier phase, and
// the retry flag) and the normalized correlation is large; different
// packets correlate near zero. The window skips the preamble and header
// chips — every packet shares the preamble and most header fields, which
// would otherwise correlate *different* packets too.
func matchScore(cfg Config, a []complex128, startA float64, b []complex128, startB float64) float64 {
	skip := (cfg.PHY.PreambleBits + modem.SymbolCount(modem.BPSK, frame.HeaderBits)) * cfg.PHY.SamplesPerSymbol
	ia, ib := int(startA)+skip, int(startB)+skip
	if ia < 0 || ib < 0 || ia >= len(a) || ib >= len(b) {
		return 0
	}
	n := MatchWindow
	if rest := len(a) - ia; rest < n {
		n = rest
	}
	if rest := len(b) - ib; rest < n {
		n = rest
	}
	if n < 64 {
		return 0
	}
	return dsp.NormalizedCorrelation(a[ia:ia+n], b[ib:ib+n])
}

// MatchPairing describes how the occurrences of two receptions pair up:
// Pairs[i] = j means occurrence i of the first reception carries the
// same packet as occurrence j of the second.
type MatchPairing struct {
	Pairs []int
	// Score is the minimum pairwise correlation across the pairing.
	Score float64
}

// MatchCollisions decides whether two receptions contain the same set of
// packets, trying every assignment of occurrences (collisions involve
// two or three packets, so brute force is fine — and the paper's Fig
// 4-1b flipped-order pattern requires trying the swap). It returns the
// best pairing and whether its score clears the threshold.
func MatchCollisions(cfg Config, a, b *Reception) (MatchPairing, bool) {
	na, nb := len(a.Packets), len(b.Packets)
	if na == 0 || na != nb {
		return MatchPairing{}, false
	}
	perm := make([]int, na)
	for i := range perm {
		perm[i] = i
	}
	best := MatchPairing{Score: -1}
	permute(perm, 0, func(p []int) {
		score := 2.0
		for i, j := range p {
			s := matchScore(cfg, a.Samples, a.Packets[i].Sync.Start, b.Samples, b.Packets[j].Sync.Start)
			if s < score {
				score = s
			}
		}
		if score > best.Score {
			best = MatchPairing{Pairs: append([]int(nil), p...), Score: score}
		}
	})
	return best, best.Score >= cfg.matchThreshold()
}

// permute enumerates permutations of p in place, calling fn for each.
func permute(p []int, k int, fn func([]int)) {
	if k == len(p) {
		fn(p)
		return
	}
	for i := k; i < len(p); i++ {
		p[k], p[i] = p[i], p[k]
		permute(p, k+1, fn)
		p[k], p[i] = p[i], p[k]
	}
}

// LocateResult is one candidate alignment of a stored packet inside a
// new reception.
type LocateResult struct {
	Pos   int     // sample position where the packet starts in the new reception
	Score float64 // normalized correlation
}

// LocatePacket slides a wide data window of a stored collision (starting
// at the stored packet's data region) across a new reception and returns
// the best alignments. This is the §4.2.2 "correlation trick" run at
// full packet-data width instead of preamble width: with a 512-sample
// window it separates same/different packets ~9 dB more sharply than
// preamble correlation, which lets the receiver recover a retransmitted
// packet's position even when its preamble spike was buried.
//
// The returned positions are starts of the packet (the window skip is
// already removed). Up to max candidates are returned, best first, at
// least a preamble apart.
func LocatePacket(cfg Config, stored []complex128, storedStart float64, fresh []complex128, max int) []LocateResult {
	var s locateScratch
	return locatePacket(cfg, stored, storedStart, fresh, max, &s)
}

// locateScratch carries the wide-window matcher's reusable working
// storage: the correlation engine's transform buffers plus the profile
// and rolling-energy vectors, which are as long as the fresh reception
// and would otherwise dominate per-lookup allocation.
type locateScratch struct {
	corr   fft.Scratch
	prof   []complex128
	energy []float64
}

// locatePacket is LocatePacket with the working storage threaded in;
// the online Receiver passes its own locateScratch so repeated store
// lookups allocate nothing in steady state.
func locatePacket(cfg Config, stored []complex128, storedStart float64, fresh []complex128, max int, s *locateScratch) []LocateResult {
	skip := (cfg.PHY.PreambleBits + modem.SymbolCount(modem.BPSK, frame.HeaderBits)) * cfg.PHY.SamplesPerSymbol
	is := int(storedStart) + skip
	if is < 0 || is >= len(stored) {
		return nil
	}
	w := MatchWindow
	if rest := len(stored) - is; rest < w {
		w = rest
	}
	if w < 128 {
		return nil
	}
	ref := stored[is : is+w]
	refE := dsp.Energy(ref)
	if refE == 0 {
		return nil
	}
	s.prof = fft.Correlate(s.prof, fresh, ref, 0, &s.corr)
	prof := s.prof
	// Normalize per position by the local window energy.
	var run float64
	if cap(s.energy) < len(prof) {
		s.energy = make([]float64, len(prof))
	}
	energy := s.energy[:len(prof)]
	for i := 0; i < len(fresh); i++ {
		v := fresh[i]
		run += real(v)*real(v) + imag(v)*imag(v)
		if i >= w {
			u := fresh[i-w]
			run -= real(u)*real(u) + imag(u)*imag(u)
		}
		if i >= w-1 {
			energy[i-w+1] = run
		}
	}
	// Pick peaks greedily, spaced at least a preamble apart, scanning
	// the normalized scores in place (max is tiny, so re-deriving the
	// score per pass beats materializing a profile-sized candidate
	// list).
	minSp := cfg.PHY.PreambleBits * cfg.PHY.SamplesPerSymbol
	var out []LocateResult
	for len(out) < max {
		best, bi := 0.0, -1
		for i := range prof {
			if energy[i] <= 0 {
				continue
			}
			m := real(prof[i])*real(prof[i]) + imag(prof[i])*imag(prof[i])
			score := m / (refE * energy[i])
			if score <= best {
				continue
			}
			tooClose := false
			for _, o := range out {
				if abs(i-skip-o.Pos) < minSp {
					tooClose = true
					break
				}
			}
			if !tooClose {
				best, bi = score, i
			}
		}
		if bi < 0 {
			break
		}
		out = append(out, LocateResult{Pos: bi - skip, Score: math.Sqrt(best)})
	}
	return out
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
