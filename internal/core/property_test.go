package core

import (
	"math/rand"
	"testing"
)

// TestRandomJitterPairsDecode is the repo's core property: across random
// 802.11-style jitter offsets, a collision pair at healthy SNR decodes
// both packets almost always (the offsets only fail when the two
// collisions happen to combine identically, cf. §4.5's condition).
func TestRandomJitterPairsDecode(t *testing.T) {
	if testing.Short() {
		t.Skip("property sweep is slow")
	}
	const trials = 10
	const noise = 0.05
	const slot = 20 // samples per 802.11 slot at 1 µs/sample
	okPackets, total, identical := 0, 0, 0
	for trial := 0; trial < trials; trial++ {
		seed := int64(1000 + trial)
		s := newScenario(t, seed, 250, []float64{14, 14}, []float64{0.003, -0.0025}, noise)
		rng := rand.New(rand.NewSource(seed * 7))
		d1 := 40 + (1+rng.Intn(31))*slot
		d2 := 40 + (1+rng.Intn(31))*slot
		if d1 == d2 {
			identical++
			continue // §4.5: same combination twice is undecodable by design
		}
		rec1 := s.collide(t, rng, noise, []int{40, d1})
		rec2 := s.collide(t, rng, noise, []int{40, d2})
		res, err := Decode(s.cfg, s.metas, []*Reception{rec1, rec2})
		if err != nil {
			total += 2
			continue
		}
		for i := range res.Packets {
			total++
			if res.Packets[i].OK() {
				okPackets++
			}
		}
	}
	if total == 0 {
		t.Skip("all draws identical")
	}
	rate := float64(okPackets) / float64(total)
	t.Logf("decoded %d/%d packets (%.0f%%), %d identical-offset draws skipped",
		okPackets, total, rate*100, identical)
	if rate < 0.85 {
		t.Fatalf("decode rate %.2f too low across random jitter", rate)
	}
}

// TestDecodeIsDeterministic: the same inputs must produce the same
// outputs bit for bit (the whole evaluation depends on this).
func TestDecodeIsDeterministic(t *testing.T) {
	const noise = 0.05
	s := newScenario(t, 77, 200, []float64{13, 13}, []float64{0.003, -0.002}, noise)
	rng := rand.New(rand.NewSource(78))
	rec1 := s.collide(t, rng, noise, []int{40, 40 + 520})
	rec2 := s.collide(t, rng, noise, []int{40, 40 + 220})
	run := func() [][]byte {
		res, err := Decode(s.cfg, s.metas, []*Reception{rec1, rec2})
		if err != nil {
			t.Fatal(err)
		}
		var out [][]byte
		for i := range res.Packets {
			out = append(out, res.Packets[i].Bits)
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if len(a[i]) != len(b[i]) {
			t.Fatalf("packet %d lengths differ", i)
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Fatalf("packet %d bit %d differs between runs", i, j)
			}
		}
	}
}

// TestDecodeDoesNotMutateInput: receptions passed to Decode must come
// back untouched (the online receiver stores and reuses them).
func TestDecodeDoesNotMutateInput(t *testing.T) {
	const noise = 0.05
	s := newScenario(t, 79, 150, []float64{13, 13}, []float64{0.003, -0.002}, noise)
	rng := rand.New(rand.NewSource(80))
	rec1 := s.collide(t, rng, noise, []int{40, 40 + 500})
	rec2 := s.collide(t, rng, noise, []int{40, 40 + 200})
	snap := append([]complex128(nil), rec1.Samples...)
	if _, err := Decode(s.cfg, s.metas, []*Reception{rec1, rec2}); err != nil {
		t.Fatal(err)
	}
	for i := range snap {
		if rec1.Samples[i] != snap[i] {
			t.Fatalf("Decode mutated input sample %d", i)
		}
	}
}
