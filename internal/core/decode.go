package core

import (
	"errors"
	"fmt"
	"math"
	"math/cmplx"

	"zigzag/internal/dsp"
	"zigzag/internal/frame"
	"zigzag/internal/modem"
	"zigzag/internal/obs"
	"zigzag/internal/phy"
)

// ErrNoProgress is reported (inside PacketResult.Err) when the greedy
// scheduler stalls before a packet is fully decoded — the §4.5 failure
// case where the collisions do not combine differently enough.
var ErrNoProgress = errors.New("zigzag: chunk scheduler stalled")

// pktState is the cross-reception state of one distinct packet.
type pktState struct {
	id   int
	meta PacketMeta

	nsym      int // total symbols incl preamble; -1 until known
	totalBits int // frame bits; -1 until known

	// Forward pass.
	decided []complex128 // decisions by symbol index
	chips   []complex128 // decided symbols upsampled (forward)
	soft    []complex128 // forward soft estimates
	weight  []float64    // forward MRC weights (|Ĥ| of the decoding rec)
	fwdUpTo int          // symbols committed forward

	// Backward pass.
	decidedB  []complex128
	chipsB    []complex128
	softB     []complex128
	weightB   []float64
	bwdDownTo int // symbols ≥ bwdDownTo are committed backward

	// shape is the normalized ISI signature of this sender's link,
	// fitted once on a clean stretch and shared across receptions.
	shape    dsp.FIR
	hasShape bool

	// eqDonor is the occurrence whose trained equalizer other
	// occurrences of this packet borrow (the ISI is a property of the
	// link, not of one reception).
	eqDonor *occState
}

// occState is the per-(packet, reception) decoding state.
type occState struct {
	p    *pktState
	r    *recState
	sync phy.Sync

	dec  *phy.SymbolDecoder // forward black-box decoder
	mod  *phy.Modeler       // forward re-encoder
	decB *phy.SymbolDecoder
	modB *phy.Modeler

	subChip  int // forward: chips [0, subChip) subtracted from r.res
	subChipB int // backward: chips [subChipB, end) subtracted from r.resB

	// spans log every forward subtraction with the model state that
	// performed it, so refinements measure residuals in the right
	// reference frame (§4.2.4b with correct bookkeeping). spansB is the
	// backward counterpart.
	spans  []subSpan
	spansB []subSpan

	prepared  bool // forward sync refined + equalizer trained
	preparedB bool
}

// subSpan is one recorded subtraction: chips [From, To) removed using
// model state Snap. Refined spans are consumed (removed from the log).
type subSpan struct {
	From, To int
	Snap     phy.ModelState
}

// recState is one reception with its mutable residual buffers.
type recState struct {
	id   int
	raw  []complex128
	res  []complex128 // forward residual
	resB []complex128 // backward residual
	occs []*occState
}

type decoder struct {
	sc   *Scratch
	cfg  Config
	sync *phy.Synchronizer
	pkts []*pktState
	recs []*recState
	sps  int
	pre  int // preamble symbols
	// marginSym keeps decode chunks clear of live interference by the
	// interpolator + equalizer skirt.
	marginSym int
	iters     int
	// kway enables the generalized ordering policy (see sic.go): set for
	// decodes over three or more distinct packets unless the pairwise
	// escape hatch is engaged.
	kway bool

	// Reusable working storage (kept across decodes on the same
	// Scratch): header demap bits, the span compaction buffer, the
	// dirty-interval cuts, and the MRC combination buffer.
	hdrBits  []byte
	spanKeep []subSpan
	cuts     []interval
	combBuf  []complex128
	pieceA   []interval
	pieceB   []interval

	// debugHook, when non-nil, is invoked after each committed chunk
	// (tests and diagnostics only).
	debugHook func(pass string, o *occState, lo, hi int)

	// obs, when non-nil, receives chunk-level events (inherited from the
	// Scratch at newDecoder time); obsRec stamps their reception
	// sequence. Nil on every path that never attached an observer.
	obs    obs.Sink
	obsRec int64
}

// emitChunk publishes one chunk-level decoder event: A=packet, B/C the
// symbol bounds, List=[reception, direction] (0 forward, 1 backward).
// Callers guard on d.obs != nil.
func (d *decoder) emitChunk(kind obs.Kind, o *occState, lo, hi, dir int, f0 float64) {
	ev := obs.Event{Kind: kind, Rec: d.obsRec, A: int64(o.p.id), B: int64(lo), C: int64(hi), F0: f0}
	ev.AppendList(o.r.id)
	ev.AppendList(dir)
	d.obs.Emit(ev)
}

// newDecoder builds a one-shot decoder on a fresh Scratch (tests and
// the scratch-free Decode path).
func newDecoder(cfg Config, metas []PacketMeta, recs []*Reception) (*decoder, error) {
	var sc Scratch
	return sc.newDecoder(cfg, metas, recs)
}

// newDecoder resets the session's decoder onto a new set of receptions,
// reclaiming every pooled object the previous decode handed out.
func (sc *Scratch) newDecoder(cfg Config, metas []PacketMeta, recs []*Reception) (*decoder, error) {
	if len(metas) == 0 || len(recs) == 0 {
		return nil, errors.New("zigzag: nothing to decode")
	}
	sc.occN, sc.modN, sc.decN = 0, 0, 0
	d := &sc.dec
	*d = decoder{
		sc:   sc,
		cfg:  cfg,
		sync: sc.synchronizer(cfg.PHY),
		sps:  cfg.PHY.SamplesPerSymbol,
		pre:  cfg.PHY.PreambleBits,
		pkts: d.pkts[:0],
		recs: d.recs[:0],
		kway: kwayActive(len(metas)),

		hdrBits:  d.hdrBits[:0],
		spanKeep: d.spanKeep[:0],
		cuts:     d.cuts[:0],
		combBuf:  d.combBuf[:0],
		pieceA:   d.pieceA[:0],
		pieceB:   d.pieceB[:0],

		obs:    sc.Obs,
		obsRec: sc.ObsRec,
	}
	interpSyms := (cfg.PHY.Interp.Taps + d.sps - 1) / d.sps
	if interpSyms == 0 {
		interpSyms = (dsp.DefaultSincTaps + d.sps - 1) / d.sps
	}
	d.marginSym = cfg.PHY.EqTaps + interpSyms + 1
	for i, m := range metas {
		p := sc.pkt(i)
		p.id, p.meta, p.nsym, p.totalBits = i, m, -1, -1
		if m.BitLen > 0 {
			p.setLength(d, m.BitLen)
		}
		d.pkts = append(d.pkts, p)
	}
	for i, rc := range recs {
		r := sc.rec(i)
		r.id, r.raw = i, rc.Samples
		r.res = dsp.Ensure(r.res, len(rc.Samples))
		copy(r.res, rc.Samples)
		for _, oc := range rc.Packets {
			if oc.Packet < 0 || oc.Packet >= len(d.pkts) {
				return nil, fmt.Errorf("zigzag: occurrence references packet %d of %d", oc.Packet, len(d.pkts))
			}
			s := oc.Sync
			if s.Freq == 0 {
				s.Freq = metas[oc.Packet].Freq
			}
			if d.kway && cmplx.Abs(s.H) == 0 {
				// A zero-power emission contributes no signal and can
				// never be decoded; dropping it at ingest keeps the k-way
				// schedule identical to the same decode without it (the
				// packet reports ErrNoProgress).
				continue
			}
			o := sc.occ()
			o.p, o.r, o.sync = d.pkts[oc.Packet], r, s
			r.occs = append(r.occs, o)
		}
		d.recs = append(d.recs, r)
	}
	// Seed the known preamble symbols: every packet starts with the
	// shared preamble, so symbols [0, pre) are decided a priori. This is
	// what lets chunk 1 of the bootstrap include another packet's
	// preamble region.
	preSyms := sc.preambleSymbols(cfg.PHY)
	for _, p := range d.pkts {
		p.grow(d, d.pre)
		copy(p.decided, preSyms)
		copy(p.decidedB, preSyms)
		p.syncChips(d, 0, d.pre)
		p.syncChipsB(d, 0, d.pre)
		p.fwdUpTo = d.pre
	}
	return d, nil
}

// setLength fixes the packet's symbol count once its frame length is
// known.
func (p *pktState) setLength(d *decoder, bits int) {
	p.totalBits = bits
	p.nsym = d.pre + modem.SymbolCount(p.meta.Scheme, bits)
	p.grow(d, p.nsym)
}

// grow ensures the per-symbol state arrays cover at least n symbols,
// zero-extending each slice in place (allocation-free once a pooled
// packet state has reached steady-state capacity).
func (p *pktState) grow(d *decoder, n int) {
	if n > len(p.decided) {
		p.decided = growZeroC(p.decided, n)
		p.soft = growZeroC(p.soft, n)
		p.weight = growZeroF(p.weight, n)
		p.decidedB = growZeroC(p.decidedB, n)
		p.softB = growZeroC(p.softB, n)
		p.weightB = growZeroF(p.weightB, n)
	}
	if nc := n * d.sps; nc > len(p.chips) {
		p.chips = growZeroC(p.chips, nc)
		p.chipsB = growZeroC(p.chipsB, nc)
	}
}

// syncChips re-renders chips for symbols [from, to) from the forward
// decisions.
func (p *pktState) syncChips(d *decoder, from, to int) {
	for k := from; k < to; k++ {
		for j := 0; j < d.sps; j++ {
			p.chips[k*d.sps+j] = p.decided[k]
		}
	}
}

func (p *pktState) syncChipsB(d *decoder, from, to int) {
	for k := from; k < to; k++ {
		for j := 0; j < d.sps; j++ {
			p.chipsB[k*d.sps+j] = p.decidedB[k]
		}
	}
}

// symUB returns the packet's symbol-count upper bound within reception r:
// the true count when known, otherwise as many symbols as the buffer
// could hold.
func (d *decoder) symUB(o *occState) int {
	if o.p.nsym >= 0 {
		return o.p.nsym
	}
	room := (float64(len(o.r.raw)) - o.sync.Start) / float64(d.sps)
	if room < 0 {
		return 0
	}
	return int(room)
}

// amp2 returns |Ĥ|² for an occurrence.
func amp2(o *occState) float64 {
	a := cmplx.Abs(o.sync.H)
	return a * a
}

// cleanExtentFwd returns the largest symbol index hi such that symbols
// [p.fwdUpTo, hi) of o's packet can be decoded from o's reception once
// all other packets' already-decoded overlap is subtracted. An
// interferer whose power is CaptureSINRdB below the packet's does not
// block (the capture rule of §4.1).
func (d *decoder) cleanExtentFwd(o *occState) int {
	p := o.p
	hi := d.symUB(o)
	if hi <= p.fwdUpTo {
		return p.fwdUpTo
	}
	pPow := amp2(o)
	for _, q := range o.r.occs {
		if q.p == o.p {
			continue
		}
		// The subtractable prefix of q ends at its decoded extent.
		dirtyLo := q.sync.Start + float64(q.p.fwdUpTo*d.sps)
		dirtyHi := q.sync.Start + float64(d.symUB(q)*d.sps)
		if dirtyHi <= dirtyLo {
			continue // fully subtractable
		}
		if amp2(q)*d.cfg.captureRatio() <= pPow {
			continue // capture: q is too weak to block p
		}
		limit := int(math.Floor((dirtyLo-o.sync.Start)/float64(d.sps))) - d.marginSym
		if limit < hi {
			hi = limit
		}
	}
	if hi < p.fwdUpTo {
		return p.fwdUpTo
	}
	return hi
}

// modeler lazily builds the forward re-encoder for an occurrence,
// installing the link's ISI shape when available.
func (d *decoder) modeler(o *occState) *phy.Modeler {
	if o.mod == nil {
		o.mod = d.sc.modeler(d.cfg.PHY, o.sync)
	}
	if o.p.hasShape && !o.mod.ISIFitted() {
		o.mod.SetShape(o.p.shape)
	}
	return o.mod
}

// ensureSubtractedFwd extends q's subtracted prefix in its reception so
// that samples up to uptoSample no longer contain q's decoded signal.
// The subtraction applies the current model; its phase stays accurate
// because refineModelsFwd re-anchors it after each decoded chunk (the
// paper's chunk-1′/chunk-1″ comparison, §4.2.4b).
func (d *decoder) ensureSubtractedFwd(q *occState, uptoSample float64) {
	limitChip := q.p.fwdUpTo * d.sps
	need := int(math.Ceil(uptoSample-q.sync.Start)) + d.marginSym*d.sps
	if need > limitChip {
		need = limitChip
	}
	if need <= q.subChip {
		return
	}
	m := d.modeler(q)
	q.spans = append(q.spans, subSpan{From: q.subChip, To: need, Snap: m.State()})
	m.Subtract(q.r.res, q.p.chips, q.subChip, need)
	q.subChip = need
}

// selfSubtractFwd subtracts o's own freshly committed chips from its
// decoding reception, lagging the commit frontier by the skirt margin so
// the next chunk's equalizer still sees intact neighbours. Once the
// packet is fully decoded the lag is dropped.
func (d *decoder) selfSubtractFwd(o *occState) {
	p := o.p
	need := p.fwdUpTo*d.sps - 2*d.marginSym*d.sps
	if p.nsym >= 0 && p.fwdUpTo >= p.nsym {
		need = p.fwdUpTo * d.sps
	}
	if need <= o.subChip {
		return
	}
	m := d.modeler(o)
	o.spans = append(o.spans, subSpan{From: o.subChip, To: need, Snap: m.State()})
	m.Subtract(o.r.res, p.chips, o.subChip, need)
	o.subChip = need
}

// refineModelsFwd runs the §4.2.4b tracker: over the sample window
// [winLo, winHi) of reception r, re-measure the phase of every
// subtraction span that lies there. The window is first clipped to
// exclude samples still holding anyone's un-subtracted signal — a
// measurement against live interference would inject jitter into the
// frequency estimates (the paper's chunk-1″ is likewise formed only
// after the overlapping chunk was decoded and removed). Each span is
// measured against the model state that performed it and then consumed.
func (d *decoder) refineModelsFwd(r *recState, winLo, winHi float64) {
	win := d.cleanPiece(r, winLo, winHi, func(o *occState) interval {
		return interval{
			o.sync.Start + float64(o.subChip),
			o.sync.Start + float64(d.symUB(o)*d.sps),
		}
	})
	if win.empty() {
		return
	}
	for _, q := range r.occs {
		qFrom := int(math.Ceil(win.Lo - q.sync.Start))
		qTo := int(math.Floor(win.Hi - q.sync.Start))
		d.refineSpans(q, qFrom, qTo, false)
	}
}

// refineSpans measures and consumes q's recorded subtraction spans that
// fall inside chips [from, to).
func (d *decoder) refineSpans(q *occState, from, to int, backward bool) {
	spans := q.spans
	mod := q.mod
	chips := q.p.chips
	if backward {
		spans = q.spansB
		mod = q.modB
		chips = q.p.chipsB
		if q.p.bwdExcluded() {
			chips = q.p.chips
		}
	}
	if mod == nil {
		return
	}
	keep := d.spanKeep[:0]
	for _, sp := range spans {
		lo, hi := sp.From, sp.To
		if lo < from {
			lo = from
		}
		if hi > to {
			hi = to
		}
		if hi-lo < d.cfg.minTrackChips() {
			keep = append(keep, sp)
			continue
		}
		mod.RefineSpan(r_res(q, backward), chips, lo, hi, sp.Snap)
		// Keep the unmeasured remainders of the span.
		if lo-sp.From >= d.cfg.minTrackChips() {
			keep = append(keep, subSpan{From: sp.From, To: lo, Snap: sp.Snap})
		}
		if sp.To-hi >= d.cfg.minTrackChips() {
			keep = append(keep, subSpan{From: hi, To: sp.To, Snap: sp.Snap})
		}
	}
	if backward {
		q.spansB = append(q.spansB[:0], keep...)
	} else {
		q.spans = append(q.spans[:0], keep...)
	}
	d.spanKeep = keep[:0]
}

// r_res selects the residual buffer for a direction.
func r_res(q *occState, backward bool) []complex128 {
	if backward {
		return q.r.resB
	}
	return q.r.res
}

// cleanPiece clips [winLo, winHi) by each occurrence's dirty interval and
// returns the longest remaining piece if it is usefully long, else an
// empty interval.
func (d *decoder) cleanPiece(r *recState, winLo, winHi float64, dirty func(*occState) interval) interval {
	if winHi-winLo < float64(d.cfg.minTrackChips()) {
		return interval{}
	}
	cuts := d.cuts[:0]
	for _, o := range r.occs {
		cuts = append(cuts, dirty(o))
	}
	d.cuts = cuts[:0]
	// subtractAll on the decoder's reusable piece buffers (no per-chunk
	// garbage).
	out, spare := (interval{winLo, winHi}).subtractAllInto(d.pieceA, d.pieceB, cuts)
	d.pieceA, d.pieceB = out[:0], spare[:0]
	var best interval
	for _, p := range out {
		if p.Hi-p.Lo > best.Hi-best.Lo {
			best = p
		}
	}
	if best.Hi-best.Lo < float64(d.cfg.minTrackChips()) {
		return interval{}
	}
	return best
}

// prepare builds the occurrence's black-box decoder. When the packet's
// preamble is still present in this reception's residual, the sync is
// refined against it (the §4.2.4a channel estimation for the sender
// whose preamble was initially buried in interference) and the equalizer
// is trained on it. When the preamble region has already been subtracted
// away (the packet's first decode from this reception happens
// mid-packet), the decoder instead borrows the equalizer trained in
// another reception of the same link and adopts the re-encoding
// tracker's refined frequency estimate.
func (d *decoder) prepare(o *occState) {
	if o.prepared {
		return
	}
	o.prepared = true
	p := o.p
	if o.subChip == 0 {
		if s, ok := d.sync.Measure(o.r.res, int(math.Round(o.sync.Start)), 2, o.sync.Freq); ok {
			// Accept the refinement only if it is consistent with the
			// detection-time estimate; a wildly different Ĥ means the
			// preamble region still holds interference.
			if cmplx.Abs(s.H) > 0.25*cmplx.Abs(o.sync.H) {
				s.Freq = o.sync.Freq
				o.sync = s
			}
		}
		o.dec = d.sc.symbolDecoder(d.cfg.PHY, o.sync, p.meta.Scheme)
		if !d.cfg.PHY.DisableEqualizer {
			if err := o.dec.TrainEqualizer(o.r.res, d.sc.preambleSymbols(d.cfg.PHY), 0); err == nil && p.eqDonor == nil {
				p.eqDonor = o
			}
		}
		return
	}
	s := o.sync
	if o.mod != nil {
		s.Freq = o.mod.Freq()
	}
	o.sync = s
	if p.eqDonor != nil && p.eqDonor.dec != nil {
		o.dec = p.eqDonor.dec.WithSync(s)
		return
	}
	o.dec = d.sc.symbolDecoder(d.cfg.PHY, s, p.meta.Scheme)
}

// tryHeader parses the frame length out of the forward-decoded header
// once enough symbols are committed. The header's check byte rejects a
// corrupt length, which would otherwise poison the packet extent and the
// whole schedule.
func (d *decoder) tryHeader(p *pktState) {
	if p.totalBits > 0 {
		return
	}
	hdrSyms := modem.SymbolCount(p.meta.Scheme, frame.HeaderBits)
	if p.fwdUpTo < d.pre+hdrSyms {
		return
	}
	d.hdrBits = modem.Demodulate(d.hdrBits[:0], p.meta.Scheme, p.decided[d.pre:d.pre+hdrSyms])
	bits := d.hdrBits
	total, err := frame.PeekLength(bits)
	if err != nil {
		return // header unreadable or check failed; length stays unknown
	}
	p.setLength(d, total)
}

// fitShape fits the link's ISI signature from the freshly decoded chunk
// region, which is interference-free by construction (or
// capture-dominant) and not yet subtracted from this reception. The fit
// range is clipped to samples free of other packets' live signal when
// such a stretch is long enough, so a capture decode does not bake the
// weak interferer into the strong sender's taps.
func (d *decoder) fitShape(o *occState, loSym, hiSym int) {
	if o.p.hasShape || d.cfg.PHY.DisableISIModel {
		return
	}
	loChip, hiChip := loSym*d.sps, hiSym*d.sps
	if hiChip-loChip < 2*d.cfg.minTrackChips() {
		return
	}
	winLo := o.sync.Start + float64(loChip)
	winHi := o.sync.Start + float64(hiChip)
	clean := d.cleanPiece(o.r, winLo, winHi, func(q *occState) interval {
		if q.p == o.p {
			return interval{} // own signal must be present
		}
		return interval{
			q.sync.Start + float64(q.subChip),
			q.sync.Start + float64(d.symUB(q)*d.sps),
		}
	})
	if !clean.empty() && clean.Hi-clean.Lo >= 2*float64(d.cfg.minTrackChips()) {
		loChip = int(math.Ceil(clean.Lo - o.sync.Start))
		hiChip = int(math.Floor(clean.Hi - o.sync.Start))
	}
	m := d.modeler(o)
	if err := m.FitISI(o.r.res, o.p.chips, loChip, hiChip); err != nil {
		return
	}
	if shape, ok := m.Shape(); ok {
		o.p.shape = shape
		o.p.hasShape = true
	}
}

// decodeChunkFwd decodes symbols [lo, hi) of o's packet from its
// reception's residual and commits all but the holdback tail.
func (d *decoder) decodeChunkFwd(o *occState, lo, hi int) {
	p := o.p
	// Clear the chunk's sample span of every other packet's decoded
	// signal (plus skirt).
	endSample := o.sync.Start + float64(hi*d.sps)
	for _, q := range o.r.occs {
		if q.p != p {
			d.ensureSubtractedFwd(q, endSample)
		}
	}
	d.prepare(o)
	commit := hi
	if hi < d.symUB(o) {
		commit = hi - d.cfg.holdback()
		if commit <= lo {
			return
		}
	}
	dec, soft := o.dec.DecodeRange(o.r.res, lo, hi, false)
	p.grow(d, commit)
	w := cmplx.Abs(o.sync.H)
	for k := lo; k < commit; k++ {
		p.decided[k] = dec[k-lo]
		p.soft[k] = soft[k-lo]
		p.weight[k] = w
	}
	p.syncChips(d, lo, commit)
	p.fwdUpTo = commit
	d.tryHeader(p)
	d.fitShape(o, lo, commit)
	if d.debugHook != nil {
		d.debugHook("fwd", o, lo, commit)
	}
	if d.obs != nil {
		d.emitChunk(obs.KindPeel, o, lo, commit, 0, cmplx.Abs(o.sync.H))
	}
	// Remove this chunk from the residual (lagged) and re-measure every
	// overlapping packet model against what remains.
	preSub := o.subChip
	d.selfSubtractFwd(o)
	if o.subChip > preSub {
		winLo := o.sync.Start + float64(preSub)
		winHi := o.sync.Start + float64(o.subChip)
		d.refineModelsFwd(o.r, winLo, winHi)
	}
}

// forceCapture is the stall fallback: the paper's receiver "tries in
// parallel to use standard decoding and ZigZag, and takes whichever
// succeeds" (§4.4). When the greedy schedule makes no progress — e.g.
// because interference inflated the weak sender's detection-time |Ĥ|
// just enough to flip the capture rule — force a chunk of the occurrence
// with the best power margin over its blockers, provided the margin is
// at least 3 dB. A wrong forced decode fails the checksum later; a right
// one restarts the schedule. It reports whether anything was forced.
//
// Under the k-way policy the margin is measured against live blockers
// only (fwdMargin): with three or more packets an interferer that is
// already fully decoded is subtracted exactly before the forced chunk
// runs, so counting it would veto forces that in fact succeed.
func (d *decoder) forceCapture() bool {
	var best *occState
	bestRatio := 2.0 // ≥3 dB margin required
	for _, r := range d.recs {
		for _, o := range r.occs {
			p := o.p
			if p.nsym >= 0 && p.fwdUpTo >= p.nsym {
				continue
			}
			if d.symUB(o)-p.fwdUpTo <= d.cfg.holdback() {
				continue
			}
			var ratio float64
			if d.kway {
				ratio = d.fwdMargin(o)
			} else {
				blocker := 0.0
				for _, q := range r.occs {
					if q.p == p {
						continue
					}
					if a := amp2(q); a > blocker {
						blocker = a
					}
				}
				if blocker == 0 {
					continue
				}
				ratio = amp2(o) / blocker
			}
			if ratio > bestRatio {
				bestRatio, best = ratio, o
			}
		}
	}
	if best == nil {
		return false
	}
	lo := best.p.fwdUpTo
	hi := lo + d.cfg.maxChunk()
	if ub := d.symUB(best); hi > ub {
		hi = ub
	}
	if d.obs != nil {
		d.emitChunk(obs.KindForce, best, lo, hi, 0, bestRatio)
	}
	before := best.p.fwdUpTo
	d.decodeChunkFwd(best, lo, hi)
	return best.p.fwdUpTo > before
}

// runForward executes the paper's greedy schedule (§4.5) until no chunk
// makes progress, decoding the largest available chunk first. Taking the
// biggest chunk each round (instead of any positive sliver) avoids
// committing few-symbol dribbles whose boundary effects degrade the
// decisions; small chunks are taken only when nothing better exists.
// Under the k-way policy, equal-length chunks are ordered by capture/SNR
// margin: the chunk whose packet stands furthest above its live
// interferers decodes first, so the subtraction error injected into the
// shared residual is smallest.
func (d *decoder) runForward() int {
	iters := 0
	for {
		iters++
		var best *occState
		bestLo, bestHi, bestGain := 0, 0, 0
		bestMargin := 0.0
		for _, r := range d.recs {
			for _, o := range r.occs {
				p := o.p
				if p.nsym >= 0 && p.fwdUpTo >= p.nsym {
					continue
				}
				lo := p.fwdUpTo
				hi := d.cleanExtentFwd(o)
				if hi <= lo {
					continue
				}
				if hi-lo > d.cfg.maxChunk() {
					hi = lo + d.cfg.maxChunk()
				}
				gain := hi - lo
				if hi < d.symUB(o) {
					gain -= d.cfg.holdback()
				}
				margin := 0.0
				if d.kway {
					margin = d.fwdMargin(o)
				}
				if gain > bestGain || (d.kway && best != nil && gain == bestGain && margin > bestMargin) {
					best, bestLo, bestHi, bestGain, bestMargin = o, lo, hi, gain, margin
				}
			}
		}
		if best == nil {
			if d.forceCapture() {
				continue
			}
			break
		}
		if d.obs != nil {
			ev := obs.Event{Kind: obs.KindSchedule, Rec: d.obsRec, A: int64(best.p.id), B: int64(bestLo), C: int64(bestHi), F0: bestMargin}
			ev.AppendList(best.r.id)
			ev.AppendList(0)
			ev.AppendList(bestGain)
			d.obs.Emit(ev)
		}
		before := best.p.fwdUpTo
		d.decodeChunkFwd(best, bestLo, bestHi)
		if best.p.fwdUpTo <= before {
			// No commit (pathological sliver): avoid spinning.
			if !d.forceCapture() {
				break
			}
		}
	}
	d.iters += iters
	return iters
}
