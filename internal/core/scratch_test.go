package core

import (
	"math/rand"
	"reflect"
	"testing"
)

// TestDecodeWithReuseBitIdentical pins the decode-session contract: a
// sequence of joint decodes run on one reused Scratch — pooled
// Modelers/SymbolDecoders, recycled packet/reception arenas, reused
// residual buffers and all — produces results identical to running each
// decode on a fresh state, across differing scenarios so stale scratch
// from one trial would poison the next if any reset were incomplete.
func TestDecodeWithReuseBitIdentical(t *testing.T) {
	sc := &Scratch{}
	type trial struct {
		seed    int64
		payload int
		snrs    []float64
		freqs   []float64
		offs1   []int
		offs2   []int
	}
	trials := []trial{
		{21, 220, []float64{16, 16}, []float64{0.002, -0.003}, []int{40, 640}, []int{40, 290}},
		{22, 140, []float64{18, 12}, []float64{-0.001, 0.004}, []int{40, 480}, []int{40, 220}},
		{23, 300, []float64{14, 17}, []float64{0.003, -0.002}, []int{40, 700}, []int{40, 380}},
		{21, 220, []float64{16, 16}, []float64{0.002, -0.003}, []int{40, 640}, []int{40, 290}},
	}
	for ti, tr := range trials {
		s := newScenario(t, tr.seed, tr.payload, tr.snrs, tr.freqs, 0.02)
		rng := rand.New(rand.NewSource(tr.seed + 100))
		rec1 := s.collide(t, rng, 0.02, tr.offs1)
		rec2 := s.collide(t, rng, 0.02, tr.offs2)
		want, err1 := Decode(s.cfg, s.metas, []*Reception{rec1, rec2})
		got, err2 := DecodeWith(sc, s.cfg, s.metas, []*Reception{rec1, rec2})
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("trial %d: error mismatch: %v vs %v", ti, err1, err2)
		}
		if err1 != nil {
			continue
		}
		if got.Iterations != want.Iterations {
			t.Fatalf("trial %d: iterations %d != %d", ti, got.Iterations, want.Iterations)
		}
		if len(got.Packets) != len(want.Packets) {
			t.Fatalf("trial %d: packet count %d != %d", ti, len(got.Packets), len(want.Packets))
		}
		for i := range want.Packets {
			w, g := want.Packets[i], got.Packets[i]
			if !reflect.DeepEqual(w.Bits, g.Bits) ||
				!reflect.DeepEqual(w.BitsForward, g.BitsForward) ||
				!reflect.DeepEqual(w.BitsBackward, g.BitsBackward) ||
				w.Source != g.Source || w.Complete != g.Complete || w.OK() != g.OK() {
				t.Fatalf("trial %d packet %d diverged from fresh-state decode", ti, i)
			}
		}
		for ri := range want.Residuals {
			if !reflect.DeepEqual(want.Residuals[ri], got.Residuals[ri]) {
				t.Fatalf("trial %d: residual %d diverged", ti, ri)
			}
		}
	}
}

// TestDecodeWithSteadyStateAllocs pins that a repeated identical decode
// on one Scratch does not grow without bound: the second and later
// repetitions reuse the arenas (a small number of allocations remains —
// the caller-owned Result and frame parses — but the big per-decode
// state must be recycled).
func TestDecodeWithSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation inflates allocation counts; the ratio pin is meaningless here")
	}
	s := newScenario(t, 29, 200, []float64{16, 16}, []float64{0.002, -0.003}, 0.02)
	rng := rand.New(rand.NewSource(131))
	rec1 := s.collide(t, rng, 0.02, []int{40, 640})
	rec2 := s.collide(t, rng, 0.02, []int{40, 290})
	recs := []*Reception{rec1, rec2}

	fresh := testing.AllocsPerRun(10, func() {
		if _, err := Decode(s.cfg, s.metas, recs); err != nil {
			t.Fatal(err)
		}
	})
	sc := &Scratch{}
	if _, err := DecodeWith(sc, s.cfg, s.metas, recs); err != nil {
		t.Fatal(err)
	}
	pooled := testing.AllocsPerRun(10, func() {
		if _, err := DecodeWith(sc, s.cfg, s.metas, recs); err != nil {
			t.Fatal(err)
		}
	})
	if pooled > fresh/2 {
		t.Errorf("pooled decode allocates %.0f/run vs %.0f fresh — session reuse is not engaging", pooled, fresh)
	}
}
