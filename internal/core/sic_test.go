package core

import (
	"math/rand"
	"reflect"
	"testing"

	"zigzag/internal/frame"
	"zigzag/internal/phy"
)

// withPairwiseSIC runs f with the escape hatch in the given state,
// restoring the previous state afterwards.
func withPairwiseSIC(t *testing.T, on bool, f func()) {
	t.Helper()
	was := PairwiseSIC()
	SetPairwiseSIC(on)
	defer SetPairwiseSIC(was)
	f()
}

// samePackets compares two decode outcomes field by field (bits, per
// direction, source, completeness); Frame pointers are compared by
// content.
func samePackets(t *testing.T, got, want []PacketResult) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("packet count %d vs %d", len(got), len(want))
	}
	for i := range want {
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Errorf("packet %d diverged:\n got: %+v\nwant: %+v", i, got[i], want[i])
		}
	}
}

// TestPairwiseHatchK2BitIdentity pins the k=2 contract of the
// generalized SIC framework: a two-packet decode takes the legacy
// pairwise path by construction, so the generalized and -pairwise-sic
// decodes must be bit-identical — and both must match the golden
// (the exact transmitted bits, BER 0).
func TestPairwiseHatchK2BitIdentity(t *testing.T) {
	const noise = 0.05
	s := newScenario(t, 61, 350, []float64{13, 13}, []float64{0.003, -0.002}, noise)
	rng := rand.New(rand.NewSource(62))
	rec1 := s.collide(t, rng, noise, []int{40, 40 + 800})
	rec2 := s.collide(t, rng, noise, []int{40, 40 + 320})

	var resGen, resPair *Result
	withPairwiseSIC(t, false, func() {
		r, err := Decode(s.cfg, s.metas, []*Reception{rec1, rec2})
		if err != nil {
			t.Fatal(err)
		}
		resGen = r
	})
	withPairwiseSIC(t, true, func() {
		r, err := Decode(s.cfg, s.metas, []*Reception{rec1, rec2})
		if err != nil {
			t.Fatal(err)
		}
		resPair = r
	})
	samePackets(t, resGen.Packets, resPair.Packets)
	if resGen.Iterations != resPair.Iterations {
		t.Errorf("iterations %d vs %d", resGen.Iterations, resPair.Iterations)
	}
	// Golden: both paths reproduce the transmitted bits exactly.
	if !resGen.AllOK() {
		t.Fatalf("k=2 decode failed: %v / %v", resGen.Packets[0].Err, resGen.Packets[1].Err)
	}
	s.checkBER(t, resGen, 0)
	for i := range resGen.Packets {
		if !frame.SamePacket(resGen.Packets[i].Frame, s.frames[i]) {
			t.Errorf("packet %d content mismatch against golden", i)
		}
	}
}

// TestKWayZeroPowerEmissionMatchesPair is the degenerate-k property:
// a k=3 decode in which the third emission has zero power must decode
// the two real packets bit-identically to the plain k=2 decode, with
// the phantom packet reporting failure. The k-way policy guarantees
// this by dropping zero-power occurrences at ingest — without that, the
// phantom would perturb refine windows and span bookkeeping.
func TestKWayZeroPowerEmissionMatchesPair(t *testing.T) {
	const noise = 0.05
	s := newScenario(t, 63, 300, []float64{13, 13}, []float64{0.004, -0.003}, noise)
	rng := rand.New(rand.NewSource(64))
	rec1 := s.collide(t, rng, noise, []int{40, 40 + 700})
	rec2 := s.collide(t, rng, noise, []int{40, 40 + 260})

	ref, err := Decode(s.cfg, s.metas, []*Reception{rec1, rec2})
	if err != nil {
		t.Fatal(err)
	}
	if !ref.AllOK() {
		t.Fatalf("k=2 reference failed: %v / %v", ref.Packets[0].Err, ref.Packets[1].Err)
	}

	// The same receptions viewed as a k=3 decode: a third client is
	// believed present, but its channel is a fade to zero. The property
	// under test is the generalized policy's ingest drop, so pin the
	// hatch off (the test must also pass under ZIGZAG_PAIRWISE_SIC=1
	// race runs).
	metas3 := append(append([]PacketMeta(nil), s.metas...), PacketMeta{Scheme: s.metas[0].Scheme})
	zero := Occurrence{Packet: 2, Sync: phy.Sync{Start: 40, RefPos: 40}}
	r1 := &Reception{Samples: rec1.Samples, Packets: append(append([]Occurrence(nil), rec1.Packets...), zero)}
	r2 := &Reception{Samples: rec2.Samples, Packets: append(append([]Occurrence(nil), rec2.Packets...), zero)}
	withPairwiseSIC(t, false, func() {
		res, err := Decode(s.cfg, metas3, []*Reception{r1, r2})
		if err != nil {
			t.Fatal(err)
		}
		samePackets(t, res.Packets[:2], ref.Packets)
		if res.Packets[2].OK() {
			t.Fatal("zero-power phantom decoded a frame")
		}
	})
}

// TestOnlineReceiverThreeWayStore exercises the k-way store matcher
// end to end: three equal-power senders collide three times with
// different offsets; the receiver stores the first two collisions and
// the third assembles all three receptions into one k=3 joint decode.
// With the pairwise hatch engaged the same sequence must stay stuck —
// one stored collision plus the fresh reception cannot resolve three
// packets.
func TestOnlineReceiverThreeWayStore(t *testing.T) {
	const noise = 0.05
	s := newScenario(t, 13, 250, []float64{13, 13, 13}, []float64{0.003, -0.002, 0.001}, noise)
	rng := rand.New(rand.NewSource(14))

	// Retransmissions replay the same bits (§5.2): clone the scenario so
	// every render reuses the waveforms.
	replay := func() *scenario {
		s2 := &scenario{cfg: s.cfg, links: s.links, metas: s.metas, truth: s.truth}
		s2.waves = s.waves
		return s2
	}
	rx1 := s.render(t, rng, noise, []int{40, 40 + 700, 40 + 1400})
	rx2 := replay().render(t, rng, noise, []int{40, 40 + 300, 40 + 2100})
	rx3 := replay().render(t, rng, noise, []int{40 + 900, 40, 40 + 1800})

	withPairwiseSIC(t, false, func() {
		z := NewReceiver(s.cfg, onlineClients(s))
		for _, ev := range z.Receive(rx1) {
			if ev.Frame != nil {
				t.Fatalf("first three-way collision should not decode, got src %d", ev.Frame.Src)
			}
		}
		if z.StoredCollisions() != 1 {
			t.Fatalf("stored after rx1 = %d, want 1", z.StoredCollisions())
		}
		for _, ev := range z.Receive(rx2) {
			if ev.Frame != nil {
				t.Fatalf("second three-way collision should not decode, got src %d", ev.Frame.Src)
			}
		}
		if z.StoredCollisions() != 2 {
			t.Fatalf("stored after rx2 = %d, want 2", z.StoredCollisions())
		}
		got := map[uint8]bool{}
		for _, ev := range z.Receive(rx3) {
			if ev.Frame == nil {
				t.Fatalf("undecoded packet in k=3 joint decode: %v", ev.Result.Err)
			}
			if ev.Via != ViaZigzag {
				t.Fatalf("via = %s, want zigzag", ev.Via)
			}
			got[ev.Frame.Src] = true
		}
		for i := range s.frames {
			if !got[s.frames[i].Src] {
				t.Fatalf("packet from src %d missing: got %v", s.frames[i].Src, got)
			}
		}
		if z.StoredCollisions() != 0 {
			t.Fatalf("store not drained: %d", z.StoredCollisions())
		}
	})

	withPairwiseSIC(t, true, func() {
		z := NewReceiver(s.cfg, onlineClients(s))
		z.Receive(rx1)
		z.Receive(rx2)
		for _, ev := range z.Receive(rx3) {
			if ev.Frame != nil {
				t.Fatalf("pairwise hatch decoded a three-way collision (src %d)", ev.Frame.Src)
			}
		}
		if z.StoredCollisions() != 3 {
			t.Fatalf("pairwise hatch: stored = %d, want 3", z.StoredCollisions())
		}
	})
}

// TestLearnAmplitudeDecay is the stale-amplitude regression (ROADMAP
// standing question): decodes that succeed before a fade leave a
// coarse Amp whose β·|Ĥ|·E detection threshold sits far above the
// faded preamble. Without aging the receiver never hears the client
// again (this loop runs forever on the old code); with decay the
// bounds relax within the forget horizon, the packet decodes, and the
// fresh estimate replaces the stale one so the next reception decodes
// immediately.
func TestLearnAmplitudeDecay(t *testing.T) {
	const noise = 0.05
	// Same seed → identical frames and link draws; only the channel gain
	// differs. The fade is ~14 dB — well past the 2.5×/0.5× trust window.
	strong := newScenario(t, 67, 200, []float64{26}, []float64{0.003}, noise)
	faded := newScenario(t, 67, 200, []float64{12}, []float64{0.003}, noise)

	z := NewReceiver(strong.cfg, onlineClients(strong))
	rng := rand.New(rand.NewSource(68))
	rxStrong := strong.render(t, rng, noise, []int{50})
	if evs := z.Receive(rxStrong); len(evs) != 1 || evs[0].Frame == nil {
		t.Fatalf("pre-fade packet did not decode: %+v", evs)
	}

	// The channel fades. The receiver's learned Amp is now stale.
	rxFaded := faded.render(t, rng, noise, []int{50})
	decodedAt := -1
	for i := 1; i <= ampForgetAge+2; i++ {
		evs := z.Receive(rxFaded)
		if len(evs) == 1 && evs[0].Frame != nil {
			decodedAt = i
			break
		}
		if i <= ampFreshFor {
			continue // deaf while the stale estimate is still trusted
		}
	}
	if decodedAt < 0 {
		t.Fatalf("faded client never decoded within %d receptions — stale amplitude was not aged out", ampForgetAge+2)
	}
	if decodedAt <= 1 {
		t.Fatalf("faded packet decoded immediately (reception %d) — the regression scenario lost its teeth", decodedAt)
	}
	t.Logf("faded client recovered at reception %d post-fade", decodedAt)

	// learn must have replaced the stale estimate with the faded-channel
	// measurement: the very next reception decodes without waiting.
	if evs := z.Receive(rxFaded); len(evs) != 1 || evs[0].Frame == nil {
		t.Fatal("reception immediately after recovery did not decode — learn kept the stale estimate")
	}
}
