package core

import (
	"zigzag/internal/modem"
	"zigzag/internal/obs"
	"zigzag/internal/phy"
)

// Scratch is the reusable state of a decode session: the synchronizer,
// the per-packet/per-reception state arenas, the residual buffers, and
// pools of Modelers and SymbolDecoders recycled through their Reinit
// lifecycle. A Monte-Carlo worker owns one Scratch and threads it
// through every DecodeWith call it makes; after the first few trials
// have grown the arenas to steady-state size, a joint decode allocates
// only its caller-visible Result.
//
// The recycling discipline is counter-based: every pooled object handed
// out during one DecodeWith call is implicitly reclaimed when the next
// call resets the counters. Consequently the previous call's Result
// remains valid — its Packets own their memory — but its Residuals
// alias the scratch residual buffers and are overwritten by the next
// DecodeWith on the same Scratch.
//
// A Scratch must not be shared by concurrent goroutines. The zero value
// is ready to use; bit-identity with scratch-free decoding is pinned by
// the decode-session tests.
type Scratch struct {
	// Obs, when non-nil, receives the decoder's chunk-level events
	// (schedule picks, peel commits, forced-capture fallbacks), stamped
	// with ObsRec as their reception sequence. The online receiver
	// threads its own sink through here before each decode; the fields
	// are read at newDecoder time, so they apply per DecodeWith call.
	Obs    obs.Sink
	ObsRec int64

	dec decoder

	syncCfg phy.Config
	sync    *phy.Synchronizer
	preCfg  phy.Config
	preSyms []complex128

	pkts []*pktState
	recs []*recState
	occs []*occState
	occN int

	modelers []*phy.Modeler
	modN     int
	decoders []*phy.SymbolDecoder
	decN     int
}

// synchronizer returns the session synchronizer, rebuilt only when the
// PHY configuration changes between calls.
func (sc *Scratch) synchronizer(cfg phy.Config) *phy.Synchronizer {
	if sc.sync == nil || sc.syncCfg != cfg {
		sc.sync = phy.NewSynchronizer(cfg)
		sc.syncCfg = cfg
	}
	return sc.sync
}

// preambleSymbols returns the cached preamble constellation for cfg.
func (sc *Scratch) preambleSymbols(cfg phy.Config) []complex128 {
	if sc.preSyms == nil || sc.preCfg != cfg {
		sc.preSyms = cfg.PreambleSymbols()
		sc.preCfg = cfg
	}
	return sc.preSyms
}

// pkt returns packet state i, reset to its zero state with all slice
// capacity retained.
func (sc *Scratch) pkt(i int) *pktState {
	var p *pktState
	if i < len(sc.pkts) {
		p = sc.pkts[i]
	} else {
		p = &pktState{}
		sc.pkts = append(sc.pkts, p)
	}
	*p = pktState{
		decided: p.decided[:0], chips: p.chips[:0], soft: p.soft[:0], weight: p.weight[:0],
		decidedB: p.decidedB[:0], chipsB: p.chipsB[:0], softB: p.softB[:0], weightB: p.weightB[:0],
	}
	return p
}

// rec returns reception state i, reset with residual-buffer capacity
// retained.
func (sc *Scratch) rec(i int) *recState {
	var r *recState
	if i < len(sc.recs) {
		r = sc.recs[i]
	} else {
		r = &recState{}
		sc.recs = append(sc.recs, r)
	}
	*r = recState{res: r.res[:0], resB: r.resB[:0], occs: r.occs[:0]}
	return r
}

// occ returns the next occurrence state of this decode, reset with span
// capacity retained.
func (sc *Scratch) occ() *occState {
	var o *occState
	if sc.occN < len(sc.occs) {
		o = sc.occs[sc.occN]
	} else {
		o = &occState{}
		sc.occs = append(sc.occs, o)
	}
	sc.occN++
	*o = occState{spans: o.spans[:0], spansB: o.spansB[:0]}
	return o
}

// modeler hands out a pooled re-encoder, recycled through
// phy.Modeler.Reinit.
func (sc *Scratch) modeler(cfg phy.Config, s phy.Sync) *phy.Modeler {
	if sc.modN < len(sc.modelers) {
		m := sc.modelers[sc.modN]
		sc.modN++
		m.Reinit(cfg, s)
		return m
	}
	m := phy.NewModeler(cfg, s)
	sc.modelers = append(sc.modelers, m)
	sc.modN++
	return m
}

// symbolDecoder hands out a pooled black-box decoder, recycled through
// phy.SymbolDecoder.Reinit. Forked decoders (WithSync/Fork) are not
// pooled: their lifetime is tied to borrowed equalizer state.
func (sc *Scratch) symbolDecoder(cfg phy.Config, s phy.Sync, scheme modem.Scheme) *phy.SymbolDecoder {
	if sc.decN < len(sc.decoders) {
		d := sc.decoders[sc.decN]
		sc.decN++
		d.Reinit(cfg, s, scheme)
		return d
	}
	d := phy.NewSymbolDecoder(cfg, s, scheme)
	sc.decoders = append(sc.decoders, d)
	sc.decN++
	return d
}

// growZeroC zero-extends a complex slice to n elements, reusing
// capacity and growing geometrically when it must reallocate.
func growZeroC(s []complex128, n int) []complex128 {
	if n <= len(s) {
		return s
	}
	if cap(s) >= n {
		t := s[len(s):n]
		for i := range t {
			t[i] = 0
		}
		return s[:n]
	}
	c := 2 * cap(s)
	if c < n {
		c = n
	}
	out := make([]complex128, n, c)
	copy(out, s)
	return out
}

// growZeroF is growZeroC for float64 slices.
func growZeroF(s []float64, n int) []float64 {
	if n <= len(s) {
		return s
	}
	if cap(s) >= n {
		t := s[len(s):n]
		for i := range t {
			t[i] = 0
		}
		return s[:n]
	}
	c := 2 * cap(s)
	if c < n {
		c = n
	}
	out := make([]float64, n, c)
	copy(out, s)
	return out
}
