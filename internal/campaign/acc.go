package campaign

import (
	"fmt"
	"strings"

	"zigzag/internal/experiments"
	"zigzag/internal/metrics"
)

// Acc is a campaign shard's accumulator. Every field is exactly
// mergeable — integer counters, exact-sum moments, integer-bucket
// quantile sketches — so Merge is exactly associative and commutative
// and any shard split × worker count reproduces the unsharded
// accumulator's observables bit for bit. It marshals losslessly to
// JSON (shard partials, checkpoints) and restores with UnmarshalJSON.
type Acc struct {
	// Trials and Episodes count completed work; Failures counts
	// episodes whose joint decode failed outright.
	Trials   metrics.Counter `json:"trials"`
	Episodes metrics.Counter `json:"episodes"`
	Failures metrics.Counter `json:"failures"`
	// ErrBits/TotBits are the exact aggregate bit tallies.
	ErrBits metrics.Counter `json:"err_bits"`
	TotBits metrics.Counter `json:"tot_bits"`
	// EpisodeBER sketches the per-episode BER distribution; SNR sketches
	// the per-sender link SNR the topology produced.
	EpisodeBER *metrics.QuantileSketch `json:"episode_ber"`
	SNR        *metrics.QuantileSketch `json:"snr"`
	// BERMoments carries the exact first two moments of episode BER.
	BERMoments metrics.Moments `json:"ber_moments"`
}

// NewAcc returns an empty accumulator.
func NewAcc() *Acc {
	return &Acc{
		EpisodeBER: metrics.NewQuantileSketch(metrics.DefaultSketchAccuracy),
		SNR:        metrics.NewQuantileSketch(metrics.DefaultSketchAccuracy),
	}
}

// observe folds one episode in.
func (a *Acc) observe(ep experiments.EpisodeResult) {
	a.Episodes.Add(1)
	if ep.DecodeFailed {
		a.Failures.Add(1)
	}
	a.ErrBits.Add(int64(ep.ErrBits))
	a.TotBits.Add(int64(ep.TotBits))
	ber := ep.BER()
	a.EpisodeBER.Add(ber)
	a.BERMoments.Add(ber)
}

// Merge folds another shard's accumulator in (exact).
func (a *Acc) Merge(b *Acc) {
	a.Trials.Merge(b.Trials)
	a.Episodes.Merge(b.Episodes)
	a.Failures.Merge(b.Failures)
	a.ErrBits.Merge(b.ErrBits)
	a.TotBits.Merge(b.TotBits)
	a.EpisodeBER.Merge(b.EpisodeBER)
	a.SNR.Merge(b.SNR)
	a.BERMoments.Merge(&b.BERMoments)
}

// BER returns the campaign's aggregate bit error rate.
func (a *Acc) BER() float64 {
	if a.TotBits == 0 {
		return 0
	}
	return float64(a.ErrBits) / float64(a.TotBits)
}

// FailureRate returns the fraction of episodes whose joint decode
// failed outright.
func (a *Acc) FailureRate() float64 {
	if a.Episodes == 0 {
		return 0
	}
	return float64(a.Failures) / float64(a.Episodes)
}

// Report renders the campaign summary. It is a pure function of the
// accumulator's mergeable observables, so a merged run's report is
// byte-identical to the unsharded run's — the merge-identity tests and
// the CLI acceptance path pin exactly this string.
func (a *Acc) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "trials            %d\n", a.Trials.Value())
	fmt.Fprintf(&b, "episodes          %d\n", a.Episodes.Value())
	fmt.Fprintf(&b, "decode failures   %d (%.5f of episodes)\n", a.Failures.Value(), a.FailureRate())
	fmt.Fprintf(&b, "aggregate BER     %.6g  (%d / %d bits)\n", a.BER(), a.ErrBits.Value(), a.TotBits.Value())
	fmt.Fprintf(&b, "episode BER mean  %.6g  std %.6g\n", a.BERMoments.Mean(), a.BERMoments.Std())
	fmt.Fprintf(&b, "episode BER p50   %.6g  p90 %.6g  p99 %.6g  max %.6g\n",
		a.EpisodeBER.Quantile(0.50), a.EpisodeBER.Quantile(0.90), a.EpisodeBER.Quantile(0.99), a.EpisodeBER.Max())
	fmt.Fprintf(&b, "link SNR (dB) p10 %.4g  p50 %.4g  p90 %.4g  range [%.4g, %.4g]\n",
		a.SNR.Quantile(0.10), a.SNR.Quantile(0.50), a.SNR.Quantile(0.90), a.SNR.Min(), a.SNR.Max())
	return b.String()
}
