package campaign

import (
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"sync/atomic"

	"zigzag/internal/runner"
	"zigzag/internal/session"
)

// Checkpointer persists a shard's streaming state — done-block flags
// plus the mergeable accumulator — so an interrupted campaign resumes
// instead of restarting. The checkpoint is written atomically
// (temp file + rename) after block completions, and is fingerprinted
// by the campaign config and shard coordinates: resuming against a
// different campaign fails loudly rather than merging garbage.
type Checkpointer struct {
	// Path is the checkpoint file. If it exists when the run starts and
	// its fingerprint matches, the run resumes from it.
	Path string
	// EveryBlocks writes the checkpoint every n-th completed block
	// (<= 0 means every block).
	EveryBlocks int
	// StopAfterBlocks, when positive, stops scheduling new blocks once
	// that many have completed in this process — deterministic
	// interruption for the resume tests and the two-process demo.
	StopAfterBlocks int

	blocks atomic.Int32
	since  int
	err    error
}

// checkpointFile is the on-disk shape.
type checkpointFile struct {
	Key  string `json:"key"`
	Done []bool `json:"done"`
	Acc  *Acc   `json:"acc"`
}

// fingerprint identifies a (campaign, shard) pair. BlockSize rides in
// the config, so resume granularity mismatches are caught too; Workers
// is excluded — resuming at a different worker count is valid and
// byte-identical.
func fingerprint(cfg Config, shards, index int) string {
	j, err := json.Marshal(cfg)
	if err != nil {
		panic(err) // Config is a fixed marshalable struct
	}
	return fmt.Sprintf("campaign/v1 shard %d/%d %s", index, shards, j)
}

// Err returns the first checkpoint-write error, if any. Run surfaces
// it, so callers only need this when driving arm by hand.
func (ck *Checkpointer) Err() error { return ck.err }

// arm wires the checkpointer into a reduce spec: restore state from an
// existing checkpoint and install the save/stop hooks.
func (ck *Checkpointer) arm(spec *runner.ReduceSpec[*session.Session, *Acc], cfg Config, shards, index int) error {
	key := fingerprint(cfg, shards, index)
	if data, err := os.ReadFile(ck.Path); err == nil {
		f := checkpointFile{Acc: NewAcc()}
		if err := json.Unmarshal(data, &f); err != nil {
			return fmt.Errorf("campaign: corrupt checkpoint %s: %w", ck.Path, err)
		}
		if f.Key != key {
			return fmt.Errorf("campaign: checkpoint %s belongs to a different campaign or shard", ck.Path)
		}
		if len(f.Done) != spec.NumBlocks() {
			return fmt.Errorf("campaign: checkpoint %s has %d blocks, campaign has %d", ck.Path, len(f.Done), spec.NumBlocks())
		}
		acc := f.Acc
		spec.Done = f.Done
		spec.Init = func() *Acc { return acc }
	} else if !errors.Is(err, fs.ErrNotExist) {
		return fmt.Errorf("campaign: read checkpoint: %w", err)
	}

	spec.OnBlock = func(_ int, done []bool, acc *Acc) {
		ck.blocks.Add(1)
		ck.since++
		every := ck.EveryBlocks
		if every <= 0 {
			every = 1
		}
		if ck.since < every {
			return
		}
		ck.since = 0
		if err := ck.save(key, done, acc); err != nil && ck.err == nil {
			ck.err = err
		}
	}
	if ck.StopAfterBlocks > 0 {
		spec.Stop = func() bool { return int(ck.blocks.Load()) >= ck.StopAfterBlocks }
	}
	return nil
}

// save writes the checkpoint atomically: marshal, write a sibling temp
// file, rename over Path.
func (ck *Checkpointer) save(key string, done []bool, acc *Acc) error {
	f := checkpointFile{Key: key, Done: done, Acc: acc}
	data, err := json.MarshalIndent(f, "", " ")
	if err != nil {
		return fmt.Errorf("campaign: marshal checkpoint: %w", err)
	}
	tmp := ck.Path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("campaign: write checkpoint: %w", err)
	}
	if err := os.Rename(tmp, ck.Path); err != nil {
		return fmt.Errorf("campaign: commit checkpoint: %w", err)
	}
	return nil
}
