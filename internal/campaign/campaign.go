// Package campaign is the city-scale Monte-Carlo engine: a multi-cell
// topology of overlapping 802.11 BSSes whose hidden-terminal collisions
// are decoded by the ZigZag session engine, folded through streaming,
// exactly mergeable reducers.
//
// The paper's testbed is 14 nodes in one building; the campaign engine
// asks the same questions at city scale — thousands of trials over many
// overlapping cells — which forces three properties the figure sweeps
// never needed:
//
//   - Streaming: results fold into mergeable accumulators (counters,
//     exact moments, quantile sketches) as trials complete, so resident
//     memory is O(workers), not O(trials).
//   - Sharding: the trial space splits into contiguous shards that run
//     in separate processes and MERGE BYTE-IDENTICALLY, because
//     per-trial seeds derive from the global trial index and every
//     accumulator's Merge is exactly associative and commutative.
//   - Resumability: shard state checkpoints periodically (block
//     granularity) and a resumed run equals the uninterrupted one.
package campaign

import (
	"fmt"
	"math"
	"math/rand"
	"sync"

	"zigzag/internal/core"
	"zigzag/internal/experiments"
	"zigzag/internal/impair"
	"zigzag/internal/obs"
	"zigzag/internal/runner"
	"zigzag/internal/session"
)

// campaignVars holds the campaign's live progress counters on the
// default observability registry. They are registered lazily (first
// trial) so that processes that never run a campaign pay nothing and
// export nothing. Unlike the Acc reducers these are process-global and
// monotonic: they report progress across every campaign in the
// process, which is exactly what a live /metrics scrape wants.
type campaignVars struct {
	trials   *obs.Counter
	episodes *obs.Counter
}

var campaignVarsOnce = sync.OnceValue(func() *campaignVars {
	return &campaignVars{
		trials:   obs.Default.Counter("zigzag_campaign_trials_total", "Monte-Carlo trials completed"),
		episodes: obs.Default.Counter("zigzag_campaign_episodes_total", "collision episodes run"),
	}
})

// Config describes one campaign: the city topology, the traffic model,
// and the Monte-Carlo budget. The zero value is unusable; start from
// DefaultConfig. Config is part of the checkpoint fingerprint, so two
// runs merge/resume only when their configs match exactly.
type Config struct {
	// Cells is the number of APs, laid out on a line with centers
	// APSpacing·2·CellRadius apart; APSpacing < 1 overlaps adjacent
	// BSSes, which is what makes cross-cell hidden terminals possible.
	Cells int `json:"cells"`
	// CellRadius is the station placement radius around each AP.
	CellRadius float64 `json:"cell_radius"`
	// APSpacing is the AP center distance as a fraction of one cell
	// diameter (2·CellRadius).
	APSpacing float64 `json:"ap_spacing"`
	// StationsPerCell is how many stations each cell hosts.
	StationsPerCell int `json:"stations_per_cell"`
	// Churn is the per-round probability that each station re-draws its
	// position (mobility between collision episodes).
	Churn float64 `json:"churn"`
	// Rounds is how many collision episodes each trial runs on its
	// evolving topology.
	Rounds int `json:"rounds"`
	// K is the collision order: senders per episode.
	K int `json:"k"`
	// Payload is the frame payload in bytes.
	Payload int `json:"payload"`

	// PathLossExp is the path-loss exponent of the SNR model
	// snr(d) = SNREdge + 10·PathLossExp·log10(CellRadius/d), clamped to
	// [MinSNR, MaxSNR]: a station at the cell edge decodes at SNREdge.
	PathLossExp float64 `json:"path_loss_exp"`
	// SNREdge is the SNR in dB at distance CellRadius from the receiver.
	SNREdge float64 `json:"snr_edge"`
	// MinSNR/MaxSNR clamp the per-station SNR (dB).
	MinSNR float64 `json:"min_snr"`
	MaxSNR float64 `json:"max_snr"`
	// Noise is the receiver noise power handed to the channel.
	Noise float64 `json:"noise"`
	// Profile optionally runs every episode under a time-varying
	// impairment chain (internal/impair).
	Profile impair.Profile `json:"profile"`

	// Trials is the GLOBAL Monte-Carlo trial count; shards split it.
	Trials int `json:"trials"`
	// Workers bounds the in-process worker pool (0 = GOMAXPROCS).
	// Results are byte-identical at any value.
	Workers int `json:"-"`
	// BlockSize is the checkpoint/scheduling granularity in trials
	// (0 = runner.DefaultBlockSize). Part of the resume fingerprint.
	BlockSize int `json:"block_size"`
	// Seed is the campaign's base seed; per-trial streams derive from
	// (Seed, global trial index) via splitmix.
	Seed int64 `json:"seed"`
}

// DefaultConfig is a small three-cell city: overlapping BSSes, mild
// churn, pairwise collisions.
func DefaultConfig() Config {
	return Config{
		Cells:           3,
		CellRadius:      1.0,
		APSpacing:       0.7,
		StationsPerCell: 6,
		Churn:           0.1,
		Rounds:          4,
		K:               2,
		Payload:         60,
		PathLossExp:     3.0,
		SNREdge:         7.0,
		MinSNR:          4.0,
		MaxSNR:          22.0,
		Noise:           0.05,
		Trials:          64,
		Seed:            1,
	}
}

// Validate rejects configs the engine cannot run.
func (c Config) Validate() error {
	switch {
	case c.Cells <= 0 || c.StationsPerCell <= 0:
		return fmt.Errorf("campaign: need at least one cell and one station (cells=%d, stations=%d)", c.Cells, c.StationsPerCell)
	case c.K < 2:
		return fmt.Errorf("campaign: collision order k=%d, need >= 2", c.K)
	case c.Cells*c.StationsPerCell < c.K:
		return fmt.Errorf("campaign: %d stations cannot supply k=%d senders", c.Cells*c.StationsPerCell, c.K)
	case c.Rounds <= 0 || c.Trials <= 0 || c.Payload <= 0:
		return fmt.Errorf("campaign: rounds, trials and payload must be positive")
	case c.CellRadius <= 0 || c.MaxSNR < c.MinSNR:
		return fmt.Errorf("campaign: bad geometry or SNR clamp")
	}
	return nil
}

// station is one node's current position.
type station struct{ x, y float64 }

// apX returns AP i's x coordinate (APs sit on a line; y = 0).
func (c Config) apX(i int) float64 { return float64(i) * c.APSpacing * 2 * c.CellRadius }

// place draws a uniform position in cell i's disc.
func (c Config) place(rng *rand.Rand, cell int) station {
	r := c.CellRadius * math.Sqrt(rng.Float64())
	th := 2 * math.Pi * rng.Float64()
	return station{x: c.apX(cell) + r*math.Cos(th), y: r * math.Sin(th)}
}

// snrAt maps a station→receiver distance to the clamped link SNR (dB).
func (c Config) snrAt(d float64) float64 {
	// Keep the near-field finite: a station cannot get closer than 2% of
	// the cell radius.
	if min := 0.02 * c.CellRadius; d < min {
		d = min
	}
	snr := c.SNREdge + 10*c.PathLossExp*math.Log10(c.CellRadius/d)
	if snr < c.MinSNR {
		return c.MinSNR
	}
	if snr > c.MaxSNR {
		return c.MaxSNR
	}
	return snr
}

// trial runs one Monte-Carlo trial on the worker's pooled session: draw
// the city, then run Rounds collision episodes with churn between them.
// All randomness comes from the session's per-trial stream, so the
// trial is a pure function of (Config, Seed, global trial index).
func (c Config) trial(sess *session.Session, acc *Acc) {
	rng := sess.Rng
	n := c.Cells * c.StationsPerCell
	stations := make([]station, n)
	for i := range stations {
		stations[i] = c.place(rng, i/c.StationsPerCell)
	}
	snrs := make([]float64, c.K)
	picked := make([]int, 0, c.K)
	for round := 0; round < c.Rounds; round++ {
		if round > 0 && c.Churn > 0 {
			for i := range stations {
				if rng.Float64() < c.Churn {
					stations[i] = c.place(rng, i/c.StationsPerCell)
				}
			}
		}
		// The receiving AP for this episode, then k distinct senders
		// drawn uniformly from the whole city — overlapping cells mean
		// senders from different BSSes routinely land in one episode,
		// which is exactly the cross-cell hidden-terminal case.
		ap := rng.Intn(c.Cells)
		ax := c.apX(ap)
		picked = picked[:0]
		for len(picked) < c.K {
			s := rng.Intn(n)
			if !contains(picked, s) {
				picked = append(picked, s)
			}
		}
		for j, s := range picked {
			d := math.Hypot(stations[s].x-ax, stations[s].y)
			snrs[j] = c.snrAt(d)
			acc.SNR.Add(snrs[j])
		}
		ep := experiments.CollisionEpisode(sess, c.Payload, snrs, c.Noise, c.Profile)
		acc.observe(ep)
		if !obs.Disabled() {
			campaignVarsOnce().episodes.Inc()
		}
	}
	acc.Trials.Add(1)
	if !obs.Disabled() {
		campaignVarsOnce().trials.Inc()
	}
}

func contains(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}

// Run executes one shard of the campaign (shard index of shards; 1,0
// for the whole campaign) and returns its accumulator. If ck is
// non-nil the shard checkpoints its state every ck.EveryBlocks blocks
// and resumes from ck.Path when a matching checkpoint exists, so an
// interrupted shard continues instead of restarting — the resumed
// result is byte-identical to an uninterrupted run.
func Run(cfg Config, shards, index int, ck *Checkpointer) (*Acc, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if shards <= 0 {
		shards, index = 1, 0
	}
	if index < 0 || index >= shards {
		return nil, fmt.Errorf("campaign: shard index %d out of range for %d shards", index, shards)
	}

	spec := runner.ReduceSpec[*session.Session, *Acc]{
		Shard:     runner.ShardRange(cfg.Trials, shards, index),
		BlockSize: cfg.BlockSize,
		Opts:      runner.Options{Workers: cfg.Workers, BaseSeed: cfg.Seed},
		Acquire:   func() *session.Session { return session.Acquire(core.DefaultConfig()) },
		Release:   session.Release,
		NewAcc:    NewAcc,
		Fold: func(sess *session.Session, acc *Acc, trial int, rng *rand.Rand) *Acc {
			sess.ResetRand(rng)
			cfg.trial(sess, acc)
			return acc
		},
		Merge: func(dst, src *Acc) *Acc { dst.Merge(src); return dst },
	}
	if ck != nil {
		if err := ck.arm(&spec, cfg, shards, index); err != nil {
			return nil, err
		}
	}
	acc := runner.Reduce(spec)
	if ck != nil && ck.Err() != nil {
		return acc, ck.Err()
	}
	return acc, nil
}
