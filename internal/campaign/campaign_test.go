package campaign

import (
	"encoding/json"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
)

// testConfig is a tiny city the suite can sweep repeatedly.
func testConfig() Config {
	cfg := DefaultConfig()
	cfg.Cells = 2
	cfg.StationsPerCell = 3
	cfg.Rounds = 2
	cfg.Payload = 40
	cfg.Trials = 12
	cfg.BlockSize = 2
	cfg.Seed = 9
	return cfg
}

func mustRun(t *testing.T, cfg Config, shards, index int, ck *Checkpointer) *Acc {
	t.Helper()
	acc, err := Run(cfg, shards, index, ck)
	if err != nil {
		t.Fatalf("Run(%d/%d): %v", index, shards, err)
	}
	return acc
}

// TestShardWorkerInvariant is the campaign acceptance pin: any shard
// split × any worker count merges to the same observables as the
// unsharded single-worker run — compared on the rendered Report, which
// is exactly what the CLI emits.
func TestShardWorkerInvariant(t *testing.T) {
	cfg := testConfig()
	cfg.Workers = 1
	want := mustRun(t, cfg, 1, 0, nil).Report()

	workersSweep := []int{1, 2}
	if n := runtime.NumCPU(); n > 2 {
		workersSweep = append(workersSweep, n)
	}
	for _, shards := range []int{1, 2, 5} {
		for _, w := range workersSweep {
			c := cfg
			c.Workers = w
			merged := NewAcc()
			for i := 0; i < shards; i++ {
				merged.Merge(mustRun(t, c, shards, i, nil))
			}
			if got := merged.Report(); got != want {
				t.Fatalf("shards=%d workers=%d report diverged\nwant:\n%s\ngot:\n%s", shards, w, want, got)
			}
		}
	}
}

// TestTrialAccounting pins the work bookkeeping: trials, episodes and
// per-sender SNR observations match the configured volumes.
func TestTrialAccounting(t *testing.T) {
	cfg := testConfig()
	acc := mustRun(t, cfg, 1, 0, nil)
	if got, want := acc.Trials.Value(), int64(cfg.Trials); got != want {
		t.Fatalf("trials = %d, want %d", got, want)
	}
	if got, want := acc.Episodes.Value(), int64(cfg.Trials*cfg.Rounds); got != want {
		t.Fatalf("episodes = %d, want %d", got, want)
	}
	if got, want := acc.SNR.N(), cfg.Trials*cfg.Rounds*cfg.K; got != want {
		t.Fatalf("snr observations = %d, want %d", got, want)
	}
	if acc.TotBits.Value() == 0 {
		t.Fatal("no bits measured")
	}
	for _, v := range []float64{acc.SNR.Min(), acc.SNR.Max()} {
		if v < cfg.MinSNR || v > cfg.MaxSNR {
			t.Fatalf("SNR %v outside clamp [%v, %v]", v, cfg.MinSNR, cfg.MaxSNR)
		}
	}
}

// TestCheckpointResume pins resumability: a run stopped mid-shard and
// resumed from its checkpoint reports byte-identically to the
// uninterrupted run.
func TestCheckpointResume(t *testing.T) {
	cfg := testConfig()
	want := mustRun(t, cfg, 1, 0, nil).Report()

	path := filepath.Join(t.TempDir(), "shard0.ckpt")
	first := &Checkpointer{Path: path, StopAfterBlocks: 2}
	partial := mustRun(t, cfg, 1, 0, first)
	if partial.Trials.Value() >= int64(cfg.Trials) {
		t.Fatalf("interruption did not interrupt: %d trials", partial.Trials.Value())
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("no checkpoint written: %v", err)
	}

	resumed := mustRun(t, cfg, 1, 0, &Checkpointer{Path: path})
	if got := resumed.Report(); got != want {
		t.Fatalf("resumed run diverged\nwant:\n%s\ngot:\n%s", want, got)
	}

	// A third run resumes a COMPLETE checkpoint: nothing left to do,
	// same report.
	again := mustRun(t, cfg, 1, 0, &Checkpointer{Path: path})
	if got := again.Report(); got != want {
		t.Fatalf("complete-checkpoint rerun diverged\nwant:\n%s\ngot:\n%s", want, got)
	}
}

// TestCheckpointRejectsMismatch pins the fingerprint: a checkpoint
// from one campaign cannot resume another.
func TestCheckpointRejectsMismatch(t *testing.T) {
	cfg := testConfig()
	path := filepath.Join(t.TempDir(), "shard.ckpt")
	mustRun(t, cfg, 2, 0, &Checkpointer{Path: path})

	other := cfg
	other.Seed++
	if _, err := Run(other, 2, 0, &Checkpointer{Path: path}); err == nil {
		t.Fatal("foreign-campaign checkpoint accepted")
	}
	if _, err := Run(cfg, 2, 1, &Checkpointer{Path: path}); err == nil {
		t.Fatal("wrong-shard checkpoint accepted")
	}
	if err := os.WriteFile(path, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Run(cfg, 2, 0, &Checkpointer{Path: path}); err == nil {
		t.Fatal("corrupt checkpoint accepted")
	}
}

// TestAccJSONRoundTrip pins the shard-partial wire format: an
// accumulator survives marshal/unmarshal with identical observables
// and still merges.
func TestAccJSONRoundTrip(t *testing.T) {
	cfg := testConfig()
	a := mustRun(t, cfg, 2, 0, nil)
	b := mustRun(t, cfg, 2, 1, nil)

	data, err := json.Marshal(a)
	if err != nil {
		t.Fatal(err)
	}
	restored := NewAcc()
	if err := json.Unmarshal(data, restored); err != nil {
		t.Fatal(err)
	}
	if got, want := restored.Report(), a.Report(); got != want {
		t.Fatalf("round-trip report diverged\nwant:\n%s\ngot:\n%s", want, got)
	}

	whole := mustRun(t, cfg, 1, 0, nil)
	restored.Merge(b)
	if got, want := restored.Report(), whole.Report(); got != want {
		t.Fatalf("restored+merged report diverged from whole\nwant:\n%s\ngot:\n%s", want, got)
	}
}

// TestValidate pins the config guard rails.
func TestValidate(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.Cells = 0 },
		func(c *Config) { c.K = 1 },
		func(c *Config) { c.StationsPerCell = 1; c.Cells = 1; c.K = 3 },
		func(c *Config) { c.Trials = 0 },
		func(c *Config) { c.CellRadius = -1 },
		func(c *Config) { c.MinSNR = 10; c.MaxSNR = 5 },
	}
	for i, mutate := range bad {
		c := DefaultConfig()
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Fatalf("bad config %d accepted", i)
		}
	}
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config rejected: %v", err)
	}
	if _, err := Run(DefaultConfig(), 2, 5, nil); err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Fatalf("out-of-range shard index accepted (err=%v)", err)
	}
}
