package channel

import (
	"math"
	"math/rand"
	"testing"

	"zigzag/internal/dsp"
	"zigzag/internal/dsp/kern"
	"zigzag/internal/impair"
)

// forceImpairEnabled re-enables the impairment engine for tests and
// benchmarks that assert impairment-active behavior, so the suite also
// passes under the ZIGZAG_NO_IMPAIR=1 race leg.
func forceImpairEnabled(t testing.TB) {
	t.Helper()
	was := impair.Disabled()
	impair.SetDisabled(false)
	t.Cleanup(func() { impair.SetDisabled(was) })
}

// impairScenario builds a deterministic two-emission collision through
// realistic links.
func impairScenario(seed int64) (*Air, []Emission, int) {
	rng := rand.New(rand.NewSource(seed))
	wave := func(n int) []complex128 {
		w := make([]complex128, n)
		for i := range w {
			if rng.Intn(2) == 0 {
				w[i] = 1
			} else {
				w[i] = -1
			}
		}
		return w
	}
	linkA := &Params{Gain: complex(0.9, 0.3), FreqOffset: 0.003, SamplingOffset: 0.21, ISI: TypicalISI(1)}
	linkB := &Params{Gain: complex(-0.5, 0.6), FreqOffset: -0.002, SamplingOffset: -0.33}
	ems := []Emission{
		{Samples: wave(900), Link: linkA, Offset: 40},
		{Samples: wave(900), Link: linkB, Offset: 420},
	}
	air := &Air{NoisePower: 0.02, Rng: rand.New(rand.NewSource(seed + 1)), RandomizePhase: true}
	return air, ems, 1400
}

// checksum folds a sample buffer into a stable 64-bit FNV digest.
func checksum(buf []complex128) uint64 {
	h := uint64(14695981039346656037)
	mix := func(v uint64) {
		for s := 0; s < 64; s += 8 {
			h ^= (v >> s) & 0xff
			h *= 1099511628211
		}
	}
	for _, c := range buf {
		mix(math.Float64bits(real(c)))
		mix(math.Float64bits(imag(c)))
	}
	return h
}

// staticMixGolden pins the static channel path: the exact digest of
// the impairScenario(42) mix rendered through the default polyphase
// resampler and the kern rotation kernel (re-pinned when dsp.Rotate
// moved to kern.MulTone; the previous Rotator-recurrence digest was
// 0xa235ed69f93bc1bf, and the two agree to ≤1e-9 of the signal scale).
// Any change to this value means the nil-impairment path's waveform
// changed. (The -naive-interp and -naive-kernels paths reproduce the
// default one only to tolerance, not bit for bit, so the hard golden
// applies to the default path; the nil/empty/disabled mutual identity
// below holds on all paths.)
const staticMixGolden uint64 = 0x92e333dca7a40a96

// TestMixNilImpairGolden pins the acceptance criterion "a nil
// impairment chain is bit-identical to the static path": nil chain,
// empty chain, and a fully configured but globally disabled chain must
// all reproduce the static digest.
func TestMixNilImpairGolden(t *testing.T) {
	forceImpairEnabled(t)
	render := func(configure func(a *Air)) uint64 {
		air, ems, n := impairScenario(42)
		configure(air)
		return checksum(air.Mix(n, ems...))
	}
	static := render(func(a *Air) {})
	if !dsp.NaiveInterp() && !kern.Naive() && static != staticMixGolden {
		t.Fatalf("static path digest %#x, want pinned %#x", static, staticMixGolden)
	}
	if got := render(func(a *Air) { a.Impair = &impair.Chain{} }); got != static {
		t.Fatalf("empty chain digest %#x, want static %#x", got, static)
	}
	full := impair.Profile{Doppler: 3e-4, InterfDuty: 0.3, DriftRate: 1e-7, ADCBits: 8}.Chain()
	full.Reset(7)
	impair.SetDisabled(true)
	got := render(func(a *Air) { a.Impair = full })
	impair.SetDisabled(false)
	if got != static {
		t.Fatalf("disabled chain digest %#x, want static %#x", got, static)
	}
	// And an *active* chain must not be identical (the hook actually runs).
	full.Reset(7)
	if got := render(func(a *Air) { a.Impair = full }); got == static {
		t.Fatal("active chain produced the static digest — impairments not applied")
	}
}

// TestMixImpairDeterminism pins reception-level reproducibility: two
// airs with identically seeded chains and rngs render identical
// impaired mixes, and the trajectory depends on the chain seed.
func TestMixImpairDeterminism(t *testing.T) {
	forceImpairEnabled(t)
	render := func(chainSeed int64) []complex128 {
		air, ems, n := impairScenario(11)
		ch := impair.Profile{Doppler: 5e-4, RicianK: 3, InterfDuty: 0.2, PhaseNoise: 1e-3}.Chain()
		ch.Reset(chainSeed)
		air.Impair = ch
		out := air.Mix(n, ems...)
		cp := make([]complex128, len(out))
		copy(cp, out)
		return cp
	}
	a, b := render(5), render(5)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("identically seeded impaired mixes diverge at sample %d", i)
		}
	}
	if checksum(render(6)) == checksum(a) {
		t.Fatal("chain seed does not influence the mix")
	}
}

// TestMixImpairAllocFree pins the acceptance criterion "the
// steady-state mix+impair path is 0 allocs/op": rendering a collision
// through a full chain (fading, multipath, drift, interferer, ADC)
// into a reused buffer allocates nothing once scratch is grown.
func TestMixImpairAllocFree(t *testing.T) {
	forceImpairEnabled(t)
	air, ems, n := impairScenario(99)
	ch := impair.Profile{
		Doppler: 3e-4, RicianK: 2, MultipathDoppler: 2e-4,
		DriftRate: 1e-7, PhaseNoise: 1e-3, InterfDuty: 0.2, ADCBits: 10,
	}.Chain()
	ch.Reset(21)
	air.Impair = ch
	var dst []complex128
	op := func() {
		dst = air.MixInto(dst, n, ems...)
	}
	op() // warm up: grow mix buffer and model scratch
	if got := testing.AllocsPerRun(50, op); got != 0 {
		t.Errorf("mix+impair: %v allocs per run in steady state, want 0", got)
	}
}

// End-to-end mix benchmarks: the collision generator's per-reception
// cost with the impairment chain off (the static paper channel) and
// fully on. make bench-impair tracks the ratio; BENCH_impair.json
// records it.
func benchMix(b *testing.B, chain *impair.Chain) {
	forceImpairEnabled(b)
	air, ems, n := impairScenario(99)
	air.Impair = chain
	var dst []complex128
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst = air.MixInto(dst, n, ems...)
	}
}

func BenchmarkMixStatic(b *testing.B) { benchMix(b, nil) }

func BenchmarkMixImpairFullChain(b *testing.B) {
	ch := impair.Profile{
		Doppler: 3e-4, RicianK: 2, MultipathDoppler: 2e-4,
		DriftRate: 1e-7, PhaseNoise: 1e-3, InterfDuty: 0.2, ADCBits: 10,
	}.Chain()
	ch.Reset(21)
	benchMix(b, ch)
}

func BenchmarkMixImpairFadingOnly(b *testing.B) {
	ch := impair.Profile{Doppler: 3e-4}.Chain()
	ch.Reset(21)
	benchMix(b, ch)
}
