// Package channel models the wireless medium the ZigZag evaluation ran
// over. It substitutes for the paper's USRP frontends and indoor 2.4 GHz
// propagation with exactly the impairment model the paper itself uses
// (Chapter 3): a flat-fading quasi-static complex gain H = h·e^{jγ}
// (Eq. 3.1), a carrier frequency offset that rotates the signal by
// e^{j2πnδfT} (§3.1.1), a fractional sampling offset with clock drift
// (§3.1.2), multipath inter-symbol interference (§3.1.3), and additive
// white Gaussian noise.
//
// The Air type is the collision generator: it overlays the transmissions
// of multiple senders at arbitrary sample offsets — the physical fact at
// the heart of the hidden-terminal problem — and adds receiver noise.
package channel

import (
	"math"
	"math/cmplx"
	"math/rand"

	"zigzag/internal/dsp"
	"zigzag/internal/dsp/kern"
)

// Params describes one sender→receiver link. The zero value is a perfect
// unit channel.
type Params struct {
	// Gain is the complex channel coefficient H = h·e^{jγ}. A zero value
	// means 1 (perfect channel).
	Gain complex128

	// FreqOffset is the carrier frequency offset in radians per sample,
	// i.e. 2π·δf·T. Typical 802.11 hardware offsets at 500 ksample/s map
	// to |FreqOffset| up to a few hundredths of a radian per sample.
	FreqOffset float64

	// Phase0 is the carrier phase at the first sample of a transmission.
	// The Air randomizes it per transmission unless frozen, since each
	// packet sees an arbitrary carrier phase.
	Phase0 float64

	// SamplingOffset is the receiver's sampling position offset μ in
	// fractional samples (§3.1.2).
	SamplingOffset float64

	// SamplingDrift is the per-sample drift of μ caused by clock skew.
	SamplingDrift float64

	// ISI is the multipath/hardware distortion filter (§3.1.3). A
	// zero-value FIR (no taps) means no ISI.
	ISI dsp.FIR

	// Interp is the fractional-delay interpolator used to realize the
	// sampling offset. The zero value uses dsp defaults.
	Interp dsp.Interpolator
}

// gain returns the effective complex gain, treating zero as unity.
func (p *Params) gain() complex128 {
	if p.Gain == 0 {
		return 1
	}
	return p.Gain
}

// Amplitude returns |H|.
func (p *Params) Amplitude() float64 { return cmplx.Abs(p.gain()) }

// Apply pushes the transmitted baseband samples x through the link,
// returning the receiver's view (before noise). dst must not alias x.
//
// The processing order mirrors the physics: the transmit/multipath
// filtering happens first (in signal time), then the receiver samples the
// continuous waveform at offset positions, and the carrier offset
// contributes a progressive rotation at those sampling instants.
func (p *Params) Apply(dst, x []complex128) []complex128 {
	var tmp []complex128
	var rs dsp.Resampler
	return p.applyWith(dst, &tmp, &rs, x)
}

// applyWith is Apply with the intermediate ISI buffer and the
// resampler's phase-FIR scratch threaded through tmp and rs, so callers
// rendering many emissions (Air.Mix in a Monte-Carlo loop) reuse all
// working storage instead of allocating per emission. dst and *tmp must
// not alias x or each other; both are grown as needed and the (possibly
// reallocated) result is returned / stored back.
func (p *Params) applyWith(dst []complex128, tmp *[]complex128, rs *dsp.Resampler, x []complex128) []complex128 {
	cur := x
	if len(p.ISI.Taps) > 0 && !p.ISI.IsIdentity() {
		*tmp = p.ISI.Apply(dsp.Ensure(*tmp, len(cur)), cur)
		cur = *tmp
	}
	if p.SamplingOffset != 0 || p.SamplingDrift != 0 {
		rs.Interp = p.Interp
		dst = rs.EvalDrift(dsp.Ensure(dst, len(cur)), cur, p.SamplingOffset, p.SamplingDrift)
		cur = dst
	}
	dst = dsp.Scale(dsp.Ensure(dst, len(cur)), p.gain(), cur)
	if p.FreqOffset != 0 || p.Phase0 != 0 {
		dst = dsp.Rotate(dst, dst, p.Phase0, p.FreqOffset)
	}
	return dst
}

// SNRToGain returns the channel amplitude that yields the requested SNR
// in dB for unit-power transmit symbols against noise of the given
// per-sample power.
func SNRToGain(snrDB, noisePower float64) float64 {
	return math.Sqrt(dsp.FromDB(snrDB) * noisePower)
}

// GainToSNR returns the SNR in dB of a link with amplitude |H| against
// noise of the given per-sample power.
func GainToSNR(amplitude, noisePower float64) float64 {
	if noisePower <= 0 {
		return math.Inf(1)
	}
	return dsp.DB(amplitude * amplitude / noisePower)
}

// Emission is one transmission placed on the air: the transmitted
// baseband samples, the link they traverse, and the sample offset at
// which they start at the receiver.
type Emission struct {
	Samples []complex128
	Link    *Params
	Offset  int
}

// Impairer is the hook the time-varying impairment engine
// (internal/impair.Chain) plugs in beneath the static link model. The
// interface is structural so the channel layer carries no impair
// dependency: BeginReception opens a reception window,
// ImpairEmission transforms one rendered emission in place before it
// is mixed (em is its index, off its sample offset in the window), and
// ImpairFront transforms the mixed buffer after noise. An impairer
// whose Active() is false is never called — Mix is then bit-identical
// to the static path.
type Impairer interface {
	Active() bool
	BeginReception()
	ImpairEmission(em int, buf []complex128, off int)
	ImpairFront(buf []complex128)
}

// EmissionBatcher is the optional batched extension of Impairer: an
// impairer that can transform every rendered emission of a reception in
// one call (bufs[i] is emission i's samples, offs[i] its window
// offset), byte-identically to per-emission ImpairEmission calls. When
// the installed impairer implements it (impair.Chain does), MixInto
// renders all emissions first and impairs them as a batch, which lets
// the impairment engine iterate model-outer and keep each model's
// kernel state hot across the whole reception.
type EmissionBatcher interface {
	ImpairEmissions(bufs [][]complex128, offs []int)
}

// Air mixes emissions into the receiver's sample buffer and adds AWGN.
type Air struct {
	// NoisePower is the mean power E[|w|²] of the complex noise added per
	// received sample. Zero means a noiseless receiver.
	NoisePower float64

	// Rng drives the noise and any randomized per-emission phases. It
	// must be non-nil if NoisePower > 0 or RandomizePhase is set.
	Rng *rand.Rand

	// RandomizePhase gives each emission an independent uniform carrier
	// phase, overriding the link's Phase0, as real asynchronous
	// transmitters would.
	RandomizePhase bool

	// Impair, when non-nil and active, is the time-varying impairment
	// chain applied on top of the static link model: link processes
	// (fading, multipath, oscillator drift) per emission before mixing,
	// front-end processes (interference, ADC) on the mixed buffer after
	// noise. Harnesses install a seeded impair.Chain here per trial;
	// pooled sessions clear it on reset.
	Impair Impairer

	// work and work2 are the per-emission rendering buffers and rsc the
	// resampler scratch Mix reuses across emissions and calls. An Air is
	// single-goroutine by construction (it owns an Rng), so no locking
	// is needed.
	work, work2 []complex128
	rsc         dsp.Resampler

	// emBufs and emOffs are the batched-emission arena: when the
	// impairer implements EmissionBatcher, every emission is rendered
	// into its own reusable buffer so the whole reception can be
	// impaired in one call before mixing.
	emBufs [][]complex128
	emOffs []int
}

// Mix renders a reception window of length n samples containing all the
// emissions at their offsets, plus noise. Emissions extending beyond the
// window are clipped. Mix does not modify the emissions.
//
// Mix allocates the window; Monte-Carlo loops render into a reusable
// caller-owned buffer with MixInto instead.
func (a *Air) Mix(n int, emissions ...Emission) []complex128 {
	return a.MixInto(nil, n, emissions...)
}

// MixInto is Mix rendering into the caller-owned buffer dst, which is
// grown as needed (nil is allowed) and returned resliced to n samples.
// The window is cleared first, so dst's prior contents do not leak into
// the reception. Callers that retain a reception beyond the next render
// (e.g. the online receiver's stored-collision window) must copy it out
// of the buffer they reuse.
func (a *Air) MixInto(dst []complex128, n int, emissions ...Emission) []complex128 {
	out := dsp.Ensure(dst, n)
	for i := range out {
		out[i] = 0
	}
	imp := a.Impair
	if imp != nil && !imp.Active() {
		imp = nil // inactive chains are never called: static path, bit for bit
	}
	if imp != nil {
		imp.BeginReception()
	}
	if b, ok := imp.(EmissionBatcher); ok && !kern.Naive() {
		// Batched path: render every emission first, impair the batch in
		// one call (byte-identical to the sequential path — each
		// (emission, model) application derives its own seed), then mix.
		if cap(a.emBufs) < len(emissions) {
			a.emBufs = append(a.emBufs[:cap(a.emBufs)], make([][]complex128, len(emissions)-cap(a.emBufs))...)
		}
		a.emBufs = a.emBufs[:len(emissions)]
		if cap(a.emOffs) < len(emissions) {
			a.emOffs = make([]int, len(emissions))
		}
		a.emOffs = a.emOffs[:len(emissions)]
		for i, e := range emissions {
			link := e.Link
			if link == nil {
				link = &Params{}
			}
			p := *link // copy so phase randomization is per-emission
			if a.RandomizePhase {
				p.Phase0 = a.Rng.Float64() * 2 * math.Pi
			}
			a.emBufs[i] = p.applyWith(a.emBufs[i], &a.work2, &a.rsc, e.Samples)
			a.emOffs[i] = e.Offset
		}
		b.ImpairEmissions(a.emBufs, a.emOffs)
		for i := range a.emBufs {
			dsp.AddAt(out, a.emOffs[i], a.emBufs[i])
		}
	} else {
		for i, e := range emissions {
			link := e.Link
			if link == nil {
				link = &Params{}
			}
			p := *link // copy so phase randomization is per-emission
			if a.RandomizePhase {
				p.Phase0 = a.Rng.Float64() * 2 * math.Pi
			}
			a.work = p.applyWith(a.work, &a.work2, &a.rsc, e.Samples)
			if imp != nil {
				imp.ImpairEmission(i, a.work, e.Offset)
			}
			dsp.AddAt(out, e.Offset, a.work)
		}
	}
	a.AddNoise(out)
	if imp != nil {
		imp.ImpairFront(out)
	}
	return out
}

// AddNoise adds complex AWGN of power NoisePower to buf in place.
func (a *Air) AddNoise(buf []complex128) {
	if a.NoisePower <= 0 {
		return
	}
	sigma := math.Sqrt(a.NoisePower / 2)
	for i := range buf {
		buf[i] += complex(sigma*a.Rng.NormFloat64(), sigma*a.Rng.NormFloat64())
	}
}

// TypicalISI returns a mild three-tap multipath profile representative of
// the indoor testbed distortions shown in Fig 5-2b: a dominant direct
// path with weaker pre- and post-cursor energy. strength scales the echo
// taps; 1.0 reproduces the default used in the experiments.
func TypicalISI(strength float64) dsp.FIR {
	return dsp.NewFIR([]complex128{
		complex(0.12*strength, 0.04*strength),
		1,
		complex(0.22*strength, -0.06*strength),
	})
}

// RandomParams draws a randomized link: uniform phase, the given SNR,
// frequency offset and sampling offset drawn uniformly within the given
// magnitude bounds, and optional ISI. It is the building block for the
// testbed topology.
func RandomParams(rng *rand.Rand, snrDB, noisePower, maxFreqOffset, maxSamplingOffset float64, isi dsp.FIR) *Params {
	p := &Params{}
	p.Randomize(rng, snrDB, noisePower, maxFreqOffset, maxSamplingOffset, isi)
	return p
}

// Randomize fills p with a RandomParams draw in place (identical draw
// order, no allocation) — the arena-friendly form the pooled session
// engine uses.
func (p *Params) Randomize(rng *rand.Rand, snrDB, noisePower, maxFreqOffset, maxSamplingOffset float64, isi dsp.FIR) {
	amp := SNRToGain(snrDB, noisePower)
	phase := rng.Float64() * 2 * math.Pi
	*p = Params{
		Gain:           complex(amp*math.Cos(phase), amp*math.Sin(phase)),
		FreqOffset:     (2*rng.Float64() - 1) * maxFreqOffset,
		SamplingOffset: (2*rng.Float64() - 1) * maxSamplingOffset,
		ISI:            isi,
	}
}
