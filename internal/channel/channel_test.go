package channel

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"

	"zigzag/internal/dsp"
)

func constVec(n int, v complex128) []complex128 {
	out := make([]complex128, n)
	for i := range out {
		out[i] = v
	}
	return out
}

func TestZeroParamsIsTransparent(t *testing.T) {
	var p Params
	x := []complex128{1, 2i, -3}
	y := p.Apply(nil, x)
	for i := range x {
		if y[i] != x[i] {
			t.Fatalf("zero params changed sample %d", i)
		}
	}
}

func TestGainAndPhase(t *testing.T) {
	p := Params{Gain: cmplx.Rect(0.5, math.Pi/3)}
	x := constVec(8, 1)
	y := p.Apply(nil, x)
	want := cmplx.Rect(0.5, math.Pi/3)
	for i := range y {
		if cmplx.Abs(y[i]-want) > 1e-12 {
			t.Fatalf("y[%d] = %v, want %v", i, y[i], want)
		}
	}
	if math.Abs(p.Amplitude()-0.5) > 1e-12 {
		t.Fatalf("Amplitude = %v", p.Amplitude())
	}
}

func TestFreqOffsetRotation(t *testing.T) {
	p := Params{FreqOffset: 0.01, Phase0: 0.2}
	x := constVec(100, 1)
	y := p.Apply(nil, x)
	for _, n := range []int{0, 10, 99} {
		want := cmplx.Exp(complex(0, 0.2+0.01*float64(n)))
		if cmplx.Abs(y[n]-want) > 1e-9 {
			t.Fatalf("y[%d] = %v, want %v", n, y[n], want)
		}
	}
}

func TestSNRGainRoundTrip(t *testing.T) {
	for _, snr := range []float64{0, 6, 10, 20} {
		g := SNRToGain(snr, 0.25)
		if got := GainToSNR(g, 0.25); math.Abs(got-snr) > 1e-9 {
			t.Fatalf("SNR round trip %v -> %v", snr, got)
		}
	}
	if !math.IsInf(GainToSNR(1, 0), 1) {
		t.Fatal("zero noise should be +Inf SNR")
	}
}

func TestAirMixOverlaysAtOffsets(t *testing.T) {
	a := &Air{}
	e1 := Emission{Samples: constVec(4, 1), Offset: 0}
	e2 := Emission{Samples: constVec(4, 1i), Offset: 2}
	out := a.Mix(8, e1, e2)
	want := []complex128{1, 1, 1 + 1i, 1 + 1i, 1i, 1i, 0, 0}
	for i := range want {
		if cmplx.Abs(out[i]-want[i]) > 1e-12 {
			t.Fatalf("out[%d] = %v, want %v", i, out[i], want[i])
		}
	}
}

func TestAirNoisePower(t *testing.T) {
	a := &Air{NoisePower: 0.5, Rng: rand.New(rand.NewSource(1))}
	buf := make([]complex128, 200000)
	a.AddNoise(buf)
	p := dsp.Power(buf)
	if math.Abs(p-0.5) > 0.01 {
		t.Fatalf("noise power = %v, want 0.5", p)
	}
}

func TestAirRandomizePhase(t *testing.T) {
	a := &Air{Rng: rand.New(rand.NewSource(2)), RandomizePhase: true}
	link := &Params{}
	x := constVec(16, 1)
	out1 := a.Mix(16, Emission{Samples: x, Link: link})
	out2 := a.Mix(16, Emission{Samples: x, Link: link})
	if cmplx.Abs(out1[0]-out2[0]) < 1e-6 {
		t.Fatal("phases should differ between emissions")
	}
	// RandomizePhase must not mutate the caller's link.
	if link.Phase0 != 0 {
		t.Fatal("Mix mutated the shared link")
	}
	// Magnitude preserved.
	if math.Abs(cmplx.Abs(out1[0])-1) > 1e-9 {
		t.Fatalf("|out| = %v", cmplx.Abs(out1[0]))
	}
}

func TestMeasuredSNRMatchesRequested(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	const noise = 0.1
	const snr = 12.0
	p := RandomParams(rng, snr, noise, 0, 0, dsp.FIR{})
	x := make([]complex128, 50000)
	for i := range x { // unit-power BPSK
		x[i] = complex(2*float64(rng.Intn(2))-1, 0)
	}
	a := &Air{NoisePower: noise, Rng: rng}
	rx := a.Mix(len(x), Emission{Samples: x, Link: p})
	sigPower := dsp.Power(rx) - noise
	got := dsp.DB(sigPower / noise)
	if math.Abs(got-snr) > 0.5 {
		t.Fatalf("measured SNR %v dB, want %v dB", got, snr)
	}
}

func TestTypicalISIIsNormalizedDominantTap(t *testing.T) {
	f := TypicalISI(1)
	if f.Taps[f.Center] != 1 {
		t.Fatal("center tap must be 1")
	}
	for i, tap := range f.Taps {
		if i == f.Center {
			continue
		}
		if cmplx.Abs(tap) >= 0.5 {
			t.Fatalf("echo tap %d too strong: %v", i, tap)
		}
	}
	if !TypicalISI(0).IsIdentity() {
		t.Fatal("zero-strength ISI should be identity")
	}
}

func TestApplyComposesImpairments(t *testing.T) {
	// Apply with all impairments must equal manual composition.
	rng := rand.New(rand.NewSource(4))
	x := make([]complex128, 128)
	for i := range x {
		x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	p := Params{
		Gain:           cmplx.Rect(0.8, 1.1),
		FreqOffset:     0.02,
		Phase0:         0.5,
		SamplingOffset: 0.3,
		ISI:            TypicalISI(1),
	}
	got := p.Apply(nil, x)
	manual := p.ISI.Apply(nil, x)
	manual = dsp.Interpolator{}.ShiftDrift(nil, manual, 0.3, 0)
	manual = dsp.Scale(manual, p.Gain, manual)
	manual = dsp.Rotate(manual, manual, 0.5, 0.02)
	for i := range got {
		if cmplx.Abs(got[i]-manual[i]) > 1e-9 {
			t.Fatalf("composition mismatch at %d", i)
		}
	}
}

func TestEmissionClipping(t *testing.T) {
	a := &Air{}
	out := a.Mix(4, Emission{Samples: constVec(10, 1), Offset: 2})
	if out[0] != 0 || out[1] != 0 || out[2] != 1 || out[3] != 1 {
		t.Fatalf("clipping wrong: %v", out)
	}
	// Negative offsets clip the emission head.
	out = a.Mix(4, Emission{Samples: constVec(10, 1), Offset: -8})
	if out[0] != 1 || out[1] != 1 || out[2] != 0 {
		t.Fatalf("negative offset clip wrong: %v", out)
	}
}

// TestMixIntoMatchesMixAndAllocFree pins MixInto against Mix: identical
// output bits from identical rng states, and zero steady-state
// allocations once the destination and render buffers have grown.
func TestMixIntoMatchesMixAndAllocFree(t *testing.T) {
	wave := make([]complex128, 400)
	r := rand.New(rand.NewSource(5))
	for i := range wave {
		wave[i] = complex(r.NormFloat64(), r.NormFloat64())
	}
	link := &Params{Gain: 0.8 + 0.3i, FreqOffset: 0.003, SamplingOffset: 0.21, ISI: TypicalISI(1)}
	ems := []Emission{
		{Samples: wave, Link: link, Offset: 30},
		{Samples: wave, Link: link, Offset: 210},
	}
	mk := func() *Air { return &Air{NoisePower: 0.02, Rng: rand.New(rand.NewSource(9)), RandomizePhase: true} }
	want := mk().Mix(700, ems...)
	got := mk().MixInto(nil, 700, ems...)
	if len(got) != len(want) {
		t.Fatalf("length %d != %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sample %d: %v != %v", i, got[i], want[i])
		}
	}
	// Dirty reuse: prior contents must not leak.
	for i := range got {
		got[i] = complex(999, -999)
	}
	got = mk().MixInto(got, 700, ems...)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("reused buffer sample %d: %v != %v", i, got[i], want[i])
		}
	}
	air := mk()
	buf := air.MixInto(nil, 700, ems...)
	op := func() { buf = air.MixInto(buf, 700, ems...) }
	if n := testing.AllocsPerRun(30, op); n != 0 {
		t.Errorf("MixInto steady state: %v allocs per run, want 0", n)
	}
}
