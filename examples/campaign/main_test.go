package main

import (
	"fmt"
	"path/filepath"
	"testing"

	"zigzag/internal/campaign"
)

// TestShardMergeIdentity smoke-tests the demo's machinery in-process:
// both shard halves written and re-read through the JSON partial
// format, merged, and compared byte-for-byte against the unsharded
// run — the same property the two-process main verifies.
func TestShardMergeIdentity(t *testing.T) {
	dir := t.TempDir()
	var paths []string
	for i := 0; i < 2; i++ {
		out := filepath.Join(dir, fmt.Sprintf("shard%d.json", i))
		if err := runShard(i, out); err != nil {
			t.Fatalf("shard %d: %v", i, err)
		}
		paths = append(paths, out)
	}
	merged, err := mergeShards(paths)
	if err != nil {
		t.Fatal(err)
	}
	whole, err := campaign.Run(demoConfig(), 1, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := merged.Report(), whole.Report(); got != want {
		t.Fatalf("merged shards diverged from single-process run\nwant:\n%s\ngot:\n%s", want, got)
	}
	if merged.Trials.Value() != int64(demoConfig().Trials) {
		t.Fatalf("merged trials = %d, want %d", merged.Trials.Value(), demoConfig().Trials)
	}
}
