// Campaign example: one city-scale Monte-Carlo campaign split across
// TWO OS PROCESSES whose partial results merge byte-identically with
// the single-process run.
//
// The parent re-executes itself twice (CAMPAIGN_SHARD=0 and =1), each
// child runs one contiguous half of the global trial space through the
// streaming reducer and writes its accumulator as JSON, and the parent
// merges the two partials. Because per-trial seeds derive from the
// GLOBAL trial index and every accumulator is exactly mergeable
// (integer counters, exact sums, integer-bucket sketches), the merged
// report is byte-for-byte the single-process report — which the demo
// verifies at the end by running the whole campaign in-process too.
//
// Run with: go run ./examples/campaign
package main

import (
	"encoding/json"
	"fmt"
	"log"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"

	"zigzag/internal/campaign"
)

// demoConfig is the campaign both the parent and the shard children
// run; it must be identical everywhere, so it lives in one place.
func demoConfig() campaign.Config {
	cfg := campaign.DefaultConfig()
	cfg.Trials = 48
	cfg.Seed = 7
	return cfg
}

// shardPartial writes/reads one child's result.
type shardPartial struct {
	Index int           `json:"index"`
	Acc   *campaign.Acc `json:"acc"`
}

// runShard is the child role: run shard index of 2, write the partial.
func runShard(index int, outPath string) error {
	acc, err := campaign.Run(demoConfig(), 2, index, nil)
	if err != nil {
		return err
	}
	data, err := json.Marshal(shardPartial{Index: index, Acc: acc})
	if err != nil {
		return err
	}
	return os.WriteFile(outPath, data, 0o644)
}

// mergeShards is the in-process half of the demo: fold partial files
// into one accumulator.
func mergeShards(paths []string) (*campaign.Acc, error) {
	merged := campaign.NewAcc()
	for _, path := range paths {
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		p := shardPartial{Acc: campaign.NewAcc()}
		if err := json.Unmarshal(data, &p); err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		merged.Merge(p.Acc)
	}
	return merged, nil
}

func main() {
	if v := os.Getenv("CAMPAIGN_SHARD"); v != "" {
		index, err := strconv.Atoi(v)
		if err == nil {
			err = runShard(index, os.Getenv("CAMPAIGN_OUT"))
		}
		if err != nil {
			log.Fatal(err)
		}
		return
	}

	self, err := os.Executable()
	if err != nil {
		log.Fatal(err)
	}
	dir, err := os.MkdirTemp("", "zigzag-campaign")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// Launch both shard processes concurrently — separate address
	// spaces, separate session pools, separate halves of the trial
	// space.
	var paths []string
	var cmds []*exec.Cmd
	for i := 0; i < 2; i++ {
		out := filepath.Join(dir, fmt.Sprintf("shard%d.json", i))
		paths = append(paths, out)
		cmd := exec.Command(self)
		cmd.Env = append(os.Environ(),
			"CAMPAIGN_SHARD="+strconv.Itoa(i), "CAMPAIGN_OUT="+out)
		cmd.Stdout, cmd.Stderr = os.Stdout, os.Stderr
		if err := cmd.Start(); err != nil {
			log.Fatal(err)
		}
		cmds = append(cmds, cmd)
	}
	for i, cmd := range cmds {
		if err := cmd.Wait(); err != nil {
			log.Fatalf("shard %d: %v", i, err)
		}
	}

	merged, err := mergeShards(paths)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("=== merged report (2 processes) ===")
	fmt.Print(merged.Report())

	whole, err := campaign.Run(demoConfig(), 1, 0, nil)
	if err != nil {
		log.Fatal(err)
	}
	if merged.Report() == whole.Report() {
		fmt.Println("=== byte-identical to the single-process run ===")
	} else {
		fmt.Println("=== MISMATCH against the single-process run ===")
		fmt.Print(whole.Report())
		os.Exit(1)
	}
}
