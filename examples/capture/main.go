// Capture-effect example: the Fig 5-4 scenario.
//
// Alice moves closer to the AP, so her signal grows stronger than Bob's
// (SINR = SNR_A − SNR_B increases). Under current 802.11 the capture
// effect lets Alice through but starves Bob completely. ZigZag decodes
// Alice despite Bob's interference, subtracts her, and recovers Bob from
// the same single collision (interference cancellation, Fig 4-1e) — so
// at moderate SINR the total throughput approaches twice the link rate.
//
// Run with: go run ./examples/capture
package main

import (
	"fmt"

	"zigzag/internal/testbed"
)

func main() {
	const (
		packets = 4
		// Paper-scale payloads: at 1300 B the airtime exceeds CWmax·slot,
		// so 802.11's hidden terminals cannot escape collisions by
		// backoff — the regime in which the capture/starvation shapes of
		// Fig 5-4 appear.
		payload = 1300
		snrB    = 12.0
	)
	fmt.Println("SINR sweep: Alice approaches the AP (Bob fixed at 12 dB)")
	fmt.Printf("%6s  %28s  %28s\n", "", "ZigZag", "802.11")
	fmt.Printf("%6s  %8s %8s %9s  %8s %8s %9s\n",
		"SINR", "Alice", "Bob", "total", "Alice", "Bob", "total")
	for _, sinr := range []float64{0, 4, 8, 12, 16} {
		row := fmt.Sprintf("%4.0fdB", sinr)
		for _, scheme := range []testbed.Scheme{testbed.ZigZag, testbed.Current80211} {
			cfg := testbed.HiddenPairConfig(snrB+sinr, snrB, testbed.FullyHidden,
				packets, payload, 0.05, 11+int64(sinr))
			cfg.Saturated = true // both senders transmit at full speed, as in the paper
			res := testbed.Run(cfg, scheme)
			row += fmt.Sprintf("  %8.3f %8.3f %9.3f",
				res.Flows[0].Throughput, res.Flows[1].Throughput, res.AggregateThroughput())
		}
		fmt.Println(row)
	}
	fmt.Println("\nexpected shapes (Fig 5-4): 802.11 loses both flows at SINR 0 and starves")
	fmt.Println("Bob at high SINR; ZigZag serves both at SINR 0 and exploits capture to")
	fmt.Println("push the total toward 2× once Alice is strong enough to decode through Bob.")
}
