// Hidden-terminal example: the paper's headline scenario end to end.
//
// Two saturated senders that cannot carrier-sense each other push
// packets through the full stack — 802.11 DCF backoff and
// retransmissions, the channel simulator, and the online ZigZag
// receiver with collision detection, matching and joint decoding. The
// same schedule is then replayed against a current-802.11 receiver to
// show the loss-rate collapse the paper reports (82.3% → 0.7% on their
// testbed, Fig 5-8).
//
// Run with: go run ./examples/hiddenterminal
package main

import (
	"fmt"

	"zigzag/internal/testbed"
)

func main() {
	const (
		packets = 12
		payload = 600 // long enough that backoff alone cannot escape collisions
		snr     = 13.0
	)
	cfg := testbed.HiddenPairConfig(snr, snr, testbed.FullyHidden, packets, payload, 0.05, 7)

	fmt.Printf("two hidden terminals, %d packets each, %d-byte payloads, %.0f dB SNR\n\n",
		packets, payload, snr)

	for _, scheme := range []testbed.Scheme{testbed.Current80211, testbed.ZigZag} {
		res := testbed.Run(cfg, scheme)
		fmt.Printf("%s:\n", scheme)
		for _, f := range res.Flows {
			fmt.Printf("  sender %d: delivered %2d/%2d, loss %5.1f%%, throughput %.3f\n",
				f.Sender, f.Stats.Delivered, f.Stats.Sent, f.Stats.LossRate()*100, f.Throughput)
		}
		fmt.Printf("  %d episodes, %d collisions, aggregate throughput %.3f\n\n",
			res.Episodes, res.Collisions, res.AggregateThroughput())
	}
	fmt.Println("ZigZag turns the repeated collisions into decodable pairs; current")
	fmt.Println("802.11 burns the retry budget and drops most packets.")
}
