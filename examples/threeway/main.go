// Three-way example: the §4.5 generalization beyond a pair of
// interferers, driven through the low-level Decode API.
//
// Three mutually hidden senders collide three times with different
// offset patterns. The greedy chunk scheduler finds a decoding order
// across the three collisions and recovers all three packets.
//
// Run with: go run ./examples/threeway
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"

	"zigzag"
)

// seedFromEnv lets THREEWAY_SEED override the default scenario seed.
// Not every random draw decodes: like the real system, some offset/
// channel combinations violate the §4.5 solvability condition or sit
// below the decoder's operating point.
func seedFromEnv() int64 {
	if v := os.Getenv("THREEWAY_SEED"); v != "" {
		var n int64
		fmt.Sscan(v, &n)
		return n
	}
	return 1
}

func main() {
	cfg := zigzag.DefaultConfig()
	tx := zigzag.NewTransmitter(cfg.PHY)
	rng := rand.New(rand.NewSource(seedFromEnv()))
	const noise = 0.05

	names := []string{"Alice", "Bob", "Carol"}
	freqs := []float64{0.003, -0.002, 0.0045}
	var waves [][]complex128
	var links []*zigzag.ChannelParams
	var metas []zigzag.PacketMeta
	for i := range names {
		payload := make([]byte, 220)
		rng.Read(payload)
		copy(payload, []byte(names[i]+"'s packet"))
		f := &zigzag.Frame{Src: uint8(i + 1), Dst: 9, Seq: uint16(i), Scheme: zigzag.BPSK, Payload: payload}
		w, err := tx.Waveform(f)
		if err != nil {
			log.Fatal(err)
		}
		waves = append(waves, w)
		links = append(links, &zigzag.ChannelParams{
			Gain:       complex(zigzag.SNRToGain(14, noise), 0),
			FreqOffset: freqs[i],
			ISI:        zigzag.TypicalISI(1),
		})
		metas = append(metas, zigzag.PacketMeta{Scheme: zigzag.BPSK, Freq: freqs[i] * 0.98})
	}

	sy := zigzag.NewSynchronizer(cfg.PHY)
	air := &zigzag.Air{NoisePower: noise, Rng: rng, RandomizePhase: true}
	collide := func(offsets [3]int) *zigzag.Reception {
		end := 0
		var ems []zigzag.Emission
		for i, off := range offsets {
			ems = append(ems, zigzag.Emission{Samples: waves[i], Link: links[i], Offset: off})
			if e := off + len(waves[i]); e > end {
				end = e
			}
		}
		rx := air.Mix(end+80, ems...)
		rec := &zigzag.Reception{Samples: rx}
		for i, off := range offsets {
			s, ok := sy.Measure(rx, off, 3, metas[i].Freq)
			if !ok {
				log.Fatalf("sender %d not detected", i)
			}
			rec.Packets = append(rec.Packets, zigzag.Occurrence{Packet: i, Sync: s})
		}
		return rec
	}

	// Three collisions of the same three packets; every pair of packets
	// combines differently in at least two collisions (the solvability
	// condition of Assertion 4.5.1).
	recs := []*zigzag.Reception{
		collide([3]int{40, 740, 1540}),
		collide([3]int{40, 360, 2240}),
		collide([3]int{940, 40, 1940}),
	}

	res, err := zigzag.Decode(cfg, metas, recs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("three senders, three collisions, %d scheduler iterations\n", res.Iterations)
	for i := range res.Packets {
		pr := &res.Packets[i]
		if !pr.OK() {
			log.Fatalf("%s failed: %v", names[i], pr.Err)
		}
		fmt.Printf("  %s ✓ via %s: %q...\n", names[i], pr.Source, pr.Frame.Payload[:16])
	}
}
