// Three-way example: the §7 generalization beyond a pair of
// interferers, driven through the online access-point API.
//
// Three mutually hidden senders collide three times with different
// offset patterns. The access point cannot decode the first collision
// (three unknowns, one equation), so it stores it — and the second.
// When the third arrives, the k-way store matcher lines the three
// receptions up by content, the greedy chunk scheduler finds a decode
// order across them, and all three packets come out at once.
//
// Run with: go run ./examples/threeway
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"

	"zigzag"
)

// seedFromEnv lets THREEWAY_SEED override the default scenario seed.
// Not every random draw decodes: like the real system, some offset/
// channel combinations violate the §4.5 solvability condition or sit
// below the decoder's operating point.
func seedFromEnv() int64 {
	if v := os.Getenv("THREEWAY_SEED"); v != "" {
		var n int64
		fmt.Sscan(v, &n)
		return n
	}
	return 1
}

var names = []string{"Alice", "Bob", "Carol"}

// outcome is everything the demo (and its smoke test) observes: which
// collision each packet decoded on, and the recovered payloads.
type outcome struct {
	payloads  map[string][]byte
	decodedOn map[string]int
	stored    [3]int // store depth after each collision
}

// run drives the online receiver through three successive three-packet
// collisions and returns what it delivered.
func run(seed int64) (*outcome, error) {
	cfg := zigzag.DefaultConfig()
	tx := zigzag.NewTransmitter(cfg.PHY)
	rng := rand.New(rand.NewSource(seed))
	const noise = 0.05

	freqs := []float64{0.003, -0.002, 0.001}
	var waves [][]complex128
	var links []*zigzag.ChannelParams
	var clients []zigzag.Client
	for i := range names {
		payload := make([]byte, 220)
		rng.Read(payload)
		copy(payload, []byte(names[i]+"'s packet"))
		f := &zigzag.Frame{Src: uint8(i + 1), Dst: 9, Seq: uint16(i), Scheme: zigzag.BPSK, Payload: payload}
		w, err := tx.Waveform(f)
		if err != nil {
			return nil, err
		}
		waves = append(waves, w)
		link := &zigzag.ChannelParams{
			Gain:       complex(zigzag.SNRToGain(13, noise), 0),
			FreqOffset: freqs[i],
			ISI:        zigzag.TypicalISI(1),
		}
		links = append(links, link)
		clients = append(clients, zigzag.Client{
			ID:     uint8(i + 1),
			Scheme: zigzag.BPSK,
			Freq:   freqs[i] * 0.98,
			Amp:    link.Amplitude(),
		})
	}

	// The online access point: it detects, stores, matches and decodes
	// on its own — unlike the offline Decode API, nobody hands it the
	// packet positions.
	z := zigzag.NewReceiver(cfg, clients)
	air := &zigzag.Air{NoisePower: noise, Rng: rng, RandomizePhase: true}
	collide := func(offsets [3]int) []zigzag.Event {
		end := 0
		var ems []zigzag.Emission
		for i, off := range offsets {
			ems = append(ems, zigzag.Emission{Samples: waves[i], Link: links[i], Offset: off})
			if e := off + len(waves[i]); e > end {
				end = e
			}
		}
		return z.Receive(air.Mix(end+80, ems...))
	}

	// Three collisions of the same three packets (retransmissions carry
	// the same bits, §5.2); every pair of packets combines with a
	// different offset in every collision, so each reception adds new
	// equations (the solvability condition of Assertion 4.5.1 extended
	// to k=3).
	out := &outcome{payloads: map[string][]byte{}, decodedOn: map[string]int{}}
	for round, offsets := range [][3]int{
		{40, 740, 1440},
		{40, 340, 2140},
		{940, 40, 1840},
	} {
		for _, ev := range collide(offsets) {
			if ev.Frame == nil {
				continue
			}
			name := names[ev.Frame.Src-1]
			out.payloads[name] = ev.Frame.Payload
			out.decodedOn[name] = round + 1
		}
		out.stored[round] = z.StoredCollisions()
	}
	return out, nil
}

func main() {
	out, err := run(seedFromEnv())
	if err != nil {
		log.Fatal(err)
	}
	for round := range out.stored {
		fmt.Printf("collision %d: %d collision(s) in the store\n", round+1, out.stored[round])
	}
	for _, name := range names {
		p, ok := out.payloads[name]
		if !ok {
			log.Fatalf("%s's packet was never decoded", name)
		}
		fmt.Printf("  %s ✓ on collision %d: %q...\n", name, out.decodedOn[name], p[:16])
	}
}
