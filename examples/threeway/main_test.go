package main

import (
	"bytes"
	"testing"

	"zigzag"
)

// TestThreeWayDecodesAllPayloads is the example-level smoke test: the
// demo's three three-packet collisions must yield all three payloads
// through the online receiver, with the first two collisions stored
// (undecodable alone) and the store drained by the third.
func TestThreeWayDecodesAllPayloads(t *testing.T) {
	// The demo exercises the generalized k-way path; pin the escape
	// hatch off so the test also passes under ZIGZAG_PAIRWISE_SIC=1
	// runs (where the sequence would stay stuck by design).
	was := zigzag.PairwiseSIC()
	zigzag.SetPairwiseSIC(false)
	defer zigzag.SetPairwiseSIC(was)

	out, err := run(1)
	if err != nil {
		t.Fatal(err)
	}
	if out.stored != [3]int{1, 2, 0} {
		t.Errorf("store depths after each collision = %v, want [1 2 0]", out.stored)
	}
	for _, name := range names {
		p, ok := out.payloads[name]
		if !ok {
			t.Fatalf("%s's packet was never decoded (got %d of 3)", name, len(out.payloads))
		}
		want := []byte(name + "'s packet")
		if !bytes.HasPrefix(p, want) {
			t.Errorf("%s's payload starts %q, want prefix %q", name, p[:min(len(p), 16)], want)
		}
		if out.decodedOn[name] != 3 {
			t.Errorf("%s decoded on collision %d, want 3 (joint k=3 decode)", name, out.decodedOn[name])
		}
	}
}
