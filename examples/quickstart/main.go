// Quickstart: decode one hidden-terminal collision pair with ZigZag.
//
// Two senders, Alice and Bob, cannot hear each other and collide at the
// AP. 802.11 retransmissions make them collide again with a different
// random offset. ZigZag uses the offset difference to decode both
// packets from the pair of collisions (§4.2 of the paper).
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand"

	"zigzag"
)

func main() {
	cfg := zigzag.DefaultConfig()
	tx := zigzag.NewTransmitter(cfg.PHY)
	rng := rand.New(rand.NewSource(42))
	const noisePower = 0.05 // SNR 13 dB with the gains below

	// 1. Two frames from two different senders.
	alice := &zigzag.Frame{Src: 1, Dst: 7, Seq: 1, Scheme: zigzag.BPSK,
		Payload: []byte("Alice says: hidden terminals need not collide forever. " +
			"ZigZag decodes both of us from two collisions!")}
	bob := &zigzag.Frame{Src: 2, Dst: 7, Seq: 9, Scheme: zigzag.BPSK,
		Payload: []byte("Bob says: I cannot hear Alice, and she cannot hear me. " +
			"Our packets keep colliding at the access point...")}

	waveA, err := tx.Waveform(alice)
	check(err)
	waveB, err := tx.Waveform(bob)
	check(err)

	// 2. Each sender has its own wireless channel to the AP: gain,
	// carrier frequency offset, sampling offset, multipath ISI.
	linkA := &zigzag.ChannelParams{
		Gain:           complex(zigzag.SNRToGain(13, noisePower), 0),
		FreqOffset:     0.003, // rad/sample
		SamplingOffset: 0.2,
		ISI:            zigzag.TypicalISI(1),
	}
	linkB := &zigzag.ChannelParams{
		Gain:           complex(0, zigzag.SNRToGain(13, noisePower)),
		FreqOffset:     -0.002,
		SamplingOffset: -0.3,
		ISI:            zigzag.TypicalISI(1),
	}

	// 3. Two collisions of the same packets at different offsets (the
	// 802.11 random jitter).
	air := &zigzag.Air{NoisePower: noisePower, Rng: rng, RandomizePhase: true}
	collide := func(offB int) []complex128 {
		return air.Mix(offB+len(waveB)+80,
			zigzag.Emission{Samples: waveA, Link: linkA, Offset: 40},
			zigzag.Emission{Samples: waveB, Link: linkB, Offset: offB},
		)
	}
	rx1 := collide(40 + 620) // first collision: Bob 620 samples late
	rx2 := collide(40 + 260) // retransmission: different jitter

	// 4. Synchronize: find each packet's preamble in each collision.
	// (The online Receiver does this automatically; here we drive the
	// pipeline by hand to show the pieces.)
	metas := []zigzag.PacketMeta{
		{Scheme: zigzag.BPSK, Freq: 0.003 * 0.98}, // AP's coarse per-client estimates
		{Scheme: zigzag.BPSK, Freq: -0.002 * 0.98},
	}
	sy := zigzag.NewSynchronizer(cfg.PHY)
	rec := func(rx []complex128, offB int) *zigzag.Reception {
		r := &zigzag.Reception{Samples: rx}
		for i, off := range []int{40, offB} {
			s, ok := sy.Measure(rx, off, 3, metas[i].Freq)
			if !ok {
				log.Fatal("preamble not detected")
			}
			r.Packets = append(r.Packets, zigzag.Occurrence{Packet: i, Sync: s})
		}
		return r
	}
	rec1 := rec(rx1, 40+620)
	rec2 := rec(rx2, 40+260)

	// 5. ZigZag joint decoding.
	res, err := zigzag.Decode(cfg, metas, []*zigzag.Reception{rec1, rec2})
	check(err)
	for i := range res.Packets {
		pr := &res.Packets[i]
		if !pr.OK() {
			log.Fatalf("packet %d failed: %v", i, pr.Err)
		}
		fmt.Printf("decoded packet %d via %s: %q\n", i, pr.Source, pr.Frame.Payload)
	}
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
