# Build/test entry points for CI and local development.
#
#   make build      — compile everything
#   make vet        — go vet
#   make test       — full-fidelity suite (slow; shrinks with core count)
#   make test-short — reduced-scale suite, well under 30 s
#   make test-race  — race-enabled short suite
#   make bench      — paper-figure benchmarks (root package)
#   make ci         — what a pipeline should run: vet + test-race
#
# The experiment suites fan Monte-Carlo trials out across all cores via
# internal/runner; per-trial seed derivation keeps every figure
# bit-identical at any worker count, so parallelism is purely a
# wall-clock lever.

GO ?= go

.PHONY: all build vet test test-short test-race bench ci

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test: build
	$(GO) test ./...

test-short: build
	$(GO) test -short ./...

test-race: build
	$(GO) test -short -race ./...

bench: build
	$(GO) test -bench=. -benchmem -run='^$$' .

ci: vet test-race
