# Build/test entry points for CI and local development.
#
#   make build      — compile everything
#   make vet        — go vet
#   make lint       — gofmt -l (fails on unformatted files) + go vet
#   make test       — full-fidelity suite (slow; shrinks with core count)
#   make test-short — reduced-scale suite, well under 30 s
#   make test-race  — race-enabled short suite
#   make bench      — paper-figure benchmarks (root package)
#   make bench-correlate — naive-vs-FFT correlation engine benchmarks
#   make bench-decode — naive-vs-polyphase decode hot-path benchmarks
#   make bench-impair — impairment-engine benchmarks: per-model costs
#                      plus static-vs-impaired Air.MixInto
#   make bench-check — session-engine benchmark-regression gate:
#                      trimmed sweeps, pooled vs unpooled identity +
#                      calibrated-unit diff against BENCH_session.json
#                      (now including the harsh-channel suite), plus the
#                      k-way gate below
#   make bench-kway — k-way SIC gate only: end-to-end joint-decode cost
#                     at k=2/3/4 vs BENCH_kway.json + k=2
#                     generalized-vs-pairwise bit-identity
#   make bench-campaign — campaign gate only: 2-shard-merge vs unsharded
#                     byte-identity, streaming-vs-legacy-metrics
#                     bit-identity, calibrated cost + shard overhead vs
#                     BENCH_campaign.json
#   make bench-kern — DSP kernel-layer benchmarks: the kern package's
#                     kernel microbenchmarks plus the impair per-model
#                     and FullChain rows they accelerate
#   make bench-kern-v3 — bench-kern rebuilt with GOAMD64=v3 (AVX/FMA
#                     baseline), for comparing instruction-set levels;
#                     record the level next to any number you commit
#   make bench-serve — streaming-serve gate only: streaming-vs-oneshot
#                     frame-digest identity, overload-shedding check,
#                     calibrated serve cost + allocation rate vs
#                     BENCH_serve.json
#   make bench-obs  — observability gate only: observation-identity
#                     frame digests (off/on/hatched), exact
#                     metrics-vs-Report reconciliation, disabled- and
#                     observed-path 0 allocs/op pins, calibrated cost +
#                     observed/disabled overhead vs BENCH_obs.json
#   make ci         — what a pipeline should run: vet + race suites
#
# The GitHub Actions pipeline (.github/workflows/ci.yml) runs `make ci`
# and `make test-short` on two Go versions, the race suites and lint as
# separate jobs, and `make bench-check` as a non-blocking perf canary.
# The experiment suites fan Monte-Carlo trials out across all cores via
# internal/runner; per-trial seed derivation keeps every figure
# bit-identical at any worker count, so parallelism is purely a
# wall-clock lever.

GO ?= go

# Packages touched by the correlation engine; test-race-correlate runs
# them twice under the race detector so the reused scratch buffers
# (Synchronizer/Receiver state, the per-plan-size pools) are exercised
# across repeated steady-state calls.
CORRELATE_PKGS = ./internal/dsp/... ./internal/phy/... ./internal/core/...

# Packages touched by the polyphase decode engine; test-race-decode runs
# them twice under the race detector so the per-modeler/per-decoder
# scratch (wave/img/chip buffers, phase-FIR coefficients, Air work
# buffers) is exercised across repeated steady-state calls on both
# interpolation paths.
DECODE_PKGS = ./internal/dsp/... ./internal/channel/... ./internal/phy/... ./internal/core/...

# Packages touched by the impairment engine; test-race-impair runs them
# twice under the race detector on both the impaired and the globally
# disabled (static-channel) path, so per-worker chains, model scratch
# and the session-pool chain lifecycle are exercised across repeated
# steady-state calls.
IMPAIR_PKGS = ./internal/impair/... ./internal/channel/... ./internal/testbed/...

# Packages touched by the generalized k-way SIC framework;
# test-race-kway runs them twice under the race detector on both SIC
# policies (generalized and the ZIGZAG_PAIRWISE_SIC=1 escape hatch), so
# the per-decoder k-way scratch, the receiver's store matcher, and the
# k-way experiment sweeps are exercised across repeated steady-state
# calls on each path.
KWAY_PKGS = ./internal/core/... ./internal/session/... ./internal/experiments/...

# Packages touched by the streaming-metrics campaign stack;
# test-race-campaign runs them twice under the race detector on both
# metrics paths (streaming reducers and the ZIGZAG_LEGACY_METRICS=1
# escape hatch), so the block-based Reduce scheduler, the mergeable
# accumulators, checkpoint/resume, and the sharded sweeps are exercised
# across repeated steady-state calls on each path.
CAMPAIGN_PKGS = ./internal/metrics/... ./internal/runner/... ./internal/session/... ./internal/campaign/... ./internal/experiments/...

# Packages touched by the streaming ingest surface and the serve
# engine; test-race-serve runs them twice under the race detector on
# both ingest paths (the Ingest/Poll front end and the
# ZIGZAG_ONESHOT_INGEST=1 one-shot wrapper hatch), so the framer state
# machine, the bounded pending queue's buffer recycling, and the
# engine's policy/latency accounting are exercised across repeated
# steady-state calls on each path.
SERVE_PKGS = ./internal/serve/... ./internal/core/... ./internal/phy/... ./internal/hatch/...

# Packages touched by the structured observability layer;
# test-race-obs runs them twice under the race detector with
# observation on and with the ZIGZAG_NO_OBS=1 global-disable hatch, so
# the event ring's mutex, the registry's atomic counters/gauges and
# mutexed histograms, the exporter's snapshot rotation, and the
# engine/receiver/framer attachment points are exercised across
# repeated steady-state calls on both paths.
OBS_PKGS = ./internal/obs/... ./internal/core/... ./internal/phy/... ./internal/serve/... ./internal/hatch/...

# Packages touched by the DSP kernel layer; test-race-kern runs them
# twice under the race detector on both kernel paths (the packed/
# recurrence kernels and the ZIGZAG_NAIVE_KERNELS=1 scalar-reference
# hatch), so the kernel dispatch flag, the per-model oscillator banks
# and the batched emission rendering are exercised across repeated
# steady-state calls on each path.
KERN_PKGS = ./internal/dsp/... ./internal/impair/... ./internal/channel/... ./internal/phy/... ./internal/core/...

.PHONY: all build vet lint test test-short test-race test-race-correlate test-race-decode test-race-impair test-race-kway test-race-campaign test-race-kern test-race-serve test-race-obs bench bench-correlate bench-decode bench-impair bench-check bench-kway bench-campaign bench-kern bench-kern-v3 bench-serve bench-obs ci

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

lint:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi
	$(GO) vet ./...

test: build
	$(GO) test ./...

test-short: build
	$(GO) test -short ./...

test-race: build
	$(GO) test -short -race ./...

test-race-correlate: build
	$(GO) test -short -race -count=2 $(CORRELATE_PKGS)

test-race-decode: build
	$(GO) test -short -race -count=2 $(DECODE_PKGS)
	ZIGZAG_NAIVE_INTERP=1 $(GO) test -short -race -count=2 $(DECODE_PKGS)

test-race-impair: build
	$(GO) test -short -race -count=2 $(IMPAIR_PKGS)
	ZIGZAG_NO_IMPAIR=1 $(GO) test -short -race -count=2 $(IMPAIR_PKGS)

test-race-kway: build
	$(GO) test -short -race -count=2 $(KWAY_PKGS)
	ZIGZAG_PAIRWISE_SIC=1 $(GO) test -short -race -count=2 $(KWAY_PKGS)

test-race-campaign: build
	$(GO) test -short -race -count=2 $(CAMPAIGN_PKGS)
	ZIGZAG_LEGACY_METRICS=1 $(GO) test -short -race -count=2 $(CAMPAIGN_PKGS)

test-race-kern: build
	$(GO) test -short -race -count=2 $(KERN_PKGS)
	ZIGZAG_NAIVE_KERNELS=1 $(GO) test -short -race -count=2 $(KERN_PKGS)

test-race-serve: build
	$(GO) test -short -race -count=2 $(SERVE_PKGS)
	ZIGZAG_ONESHOT_INGEST=1 $(GO) test -short -race -count=2 $(SERVE_PKGS)

test-race-obs: build
	$(GO) test -short -race -count=2 $(OBS_PKGS)
	ZIGZAG_NO_OBS=1 $(GO) test -short -race -count=2 $(OBS_PKGS)

bench: build
	$(GO) test -bench=. -benchmem -run='^$$' .

bench-correlate: build
	$(GO) test -bench='BenchmarkCorrelateProfile|BenchmarkCrossover|BenchmarkFFT' -benchmem -run='^$$' ./internal/dsp/fft
	$(GO) test -bench='BenchmarkLocatePacket' -benchmem -run='^$$' ./internal/core

bench-decode: build
	$(GO) test -bench='BenchmarkBuildImage|BenchmarkTrackAndSubtract|BenchmarkSubtract|BenchmarkDecodeRange|BenchmarkShiftDrift' -benchmem -run='^$$' ./internal/phy

bench-impair: build
	$(GO) test -bench='BenchmarkFading|BenchmarkMultipath|BenchmarkDrift|BenchmarkInterferer|BenchmarkADC|BenchmarkFullChain' -benchmem -run='^$$' ./internal/impair
	$(GO) test -bench='BenchmarkMix' -benchmem -run='^$$' ./internal/channel

bench-check: build
	$(GO) run ./cmd/zigzag-bench -check

bench-kway: build
	$(GO) run ./cmd/zigzag-bench -check -kway-only

bench-campaign: build
	$(GO) run ./cmd/zigzag-bench -check -campaign-only

bench-serve: build
	$(GO) run ./cmd/zigzag-bench -check -serve-only

bench-obs: build
	$(GO) run ./cmd/zigzag-bench -check -obs-only

bench-kern: build
	$(GO) test -bench=. -benchmem -run='^$$' ./internal/dsp/kern
	$(GO) test -bench='BenchmarkFading|BenchmarkMultipath|BenchmarkDrift|BenchmarkInterferer|BenchmarkADC|BenchmarkFullChain' -benchmem -run='^$$' ./internal/impair

bench-kern-v3:
	GOAMD64=v3 $(GO) build ./...
	GOAMD64=v3 $(GO) test -bench=. -benchmem -run='^$$' ./internal/dsp/kern
	GOAMD64=v3 $(GO) test -bench='BenchmarkFading|BenchmarkMultipath|BenchmarkDrift|BenchmarkInterferer|BenchmarkADC|BenchmarkFullChain' -benchmem -run='^$$' ./internal/impair

# test-race-correlate is not a ci prerequisite: test-race-decode's
# default-path run covers the same packages (plus channel) with the
# same flags, so listing both would race-test dsp/phy/core twice.
# test-race-impair IS listed: its no-impair leg and the impair/testbed
# packages are not covered by the decode matrix. test-race-kway is
# likewise listed for its pairwise-hatch leg and the session/experiments
# coverage of the generalized scheduler. test-race-campaign adds the
# metrics/runner/campaign packages and the legacy-metrics-hatch leg.
# test-race-kern adds the naive-kernels-hatch leg across every package
# the kernel layer dispatches in. test-race-serve adds the serve/hatch
# packages and the oneshot-ingest-hatch leg over the streaming surface.
# test-race-obs adds the obs package and the no-obs-hatch leg over
# every instrumented attachment point.
ci: vet test-race test-race-decode test-race-impair test-race-kway test-race-campaign test-race-kern test-race-serve test-race-obs
