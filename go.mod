module zigzag

go 1.24
